// ResultCache: the serving layer's memo over api::check.
//
// Key = (structural netlist hash, bad index, depth bound, config
// fingerprint): two submissions with equal keys would run the exact same
// race, so the verdict, trace and per-depth counters of the first can be
// returned verbatim for the second without touching a solver.  Each
// component closes a distinct aliasing hole:
//
//   * netlist hash    — model::structural_hash, names excluded, so the
//                       same circuit resubmitted under a different label
//                       still hits;
//   * bad index       — which property;
//   * depth bound     — a `bound` verdict certifies only depths 0..k;
//   * config          — api::config_fingerprint, which embeds
//                       bmc::formula_fingerprint (the shard GroupKey
//                       component) plus every search-affecting knob.
//
// LRU with a fixed capacity; all operations mutex-guarded (lookups from
// concurrent executor threads).  Hit/miss/eviction counters feed the
// server's metrics.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "api/refbmc.hpp"

namespace refbmc::service {

struct CacheKey {
  std::uint64_t netlist_hash = 0;
  std::uint64_t bad_index = 0;
  int max_depth = 0;
  std::uint64_t config = 0;

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    // FNV-1a over the four words, matching the repo's other hashes.
    std::uint64_t h = 1469598103934665603ull;
    for (const std::uint64_t word :
         {k.netlist_hash, k.bad_index, static_cast<std::uint64_t>(k.max_depth),
          k.config})
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (word >> (byte * 8)) & 0xff;
        h *= 1099511628211ull;
      }
    return static_cast<std::size_t>(h);
  }
};

/// Builds the cache key of a request (hashes the netlist — linear in the
/// model, trivial next to any solve).
CacheKey cache_key(const api::CheckRequest& request);

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns a copy of the cached result (marked from_cache) and
  /// promotes the entry to most-recently-used; nullopt on miss.
  std::optional<api::CheckResult> lookup(const CacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// one beyond capacity.  Results that carry no verdict (ResourceLimit:
  /// cancelled / deadline / budget runs) are NOT cacheable — a rerun
  /// with more budget could do better — and are ignored.
  void insert(const CacheKey& key, const api::CheckResult& result);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  using Entry = std::pair<CacheKey, api::CheckResult>;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace refbmc::service
