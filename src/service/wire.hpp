// The serving wire: length-prefixed JSON frames plus the read half the
// repo's write-only util/json.hpp never needed until a server had to
// *parse* requests.
//
// Framing — one message per frame, both directions:
//
//   +------------------+----------------------+
//   | length: 4B LE    | payload: JSON, UTF-8 |
//   +------------------+----------------------+
//
// A frame length above the cap (default 64 MiB) is a protocol error and
// closes the connection — admission control must not be defeatable by a
// length header.
//
// JsonValue — a tiny immutable JSON tree with a recursive-descent
// parser: objects, arrays, strings (incl. \uXXXX escapes), doubles,
// bools, null.  Object member order is preserved; duplicate keys keep
// the last.  Numbers are doubles — anything that must survive 64 bits
// exactly (hashes) travels as a string.
//
// Netlists travel as ASCII AIGER text inside a JSON string
// (model::write_aiger / read_aiger_string), so the wire needs no second
// model format.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "service/job_server.hpp"
#include "util/json.hpp"

namespace refbmc::service {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::vector<Member> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<Member>& members() const { return members_; }

  /// Object member lookup (nullptr when absent or not an object).
  const JsonValue* find(const std::string& key) const;

  // Typed member getters with defaults — the shape every handler needs.
  std::string get_string(const std::string& key,
                         const std::string& def = "") const;
  double get_number(const std::string& key, double def = 0.0) const;
  bool get_bool(const std::string& key, bool def = false) const;
  std::int64_t get_int(const std::string& key, std::int64_t def = 0) const;
  std::uint64_t get_uint64(const std::string& key,
                           std::uint64_t def = 0) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parses one JSON document (trailing garbage is an error).  Returns
/// nullopt and fills `*error` (when non-null) with position + reason.
std::optional<JsonValue> json_parse(const std::string& text,
                                    std::string* error = nullptr);

// ---- framing over a file descriptor ---------------------------------------

inline constexpr std::size_t kMaxFrameBytes = std::size_t{64} << 20;

/// Writes one length-prefixed frame; false on short write / closed peer.
bool write_frame(int fd, const std::string& payload);

/// Reads one frame into `payload`; false on EOF, error or oversized
/// length prefix.
bool read_frame(int fd, std::string& payload,
                std::size_t max_bytes = kMaxFrameBytes);

// ---- request/response payloads --------------------------------------------

/// Encodes the race options a submit carries (only the fields that
/// differ from defaults would also work, but a full dump keeps the
/// decoder trivial and the frames small anyway).
void write_race_options(JsonWriter& w, const api::RaceOptions& options);

/// Decodes an options object written by write_race_options (absent
/// members keep defaults, so old clients stay decodable).
api::RaceOptions parse_race_options(const JsonValue& obj);

/// Encodes a JobStatus response body (the "ok" envelope is the
/// dispatcher's business).  Traces are included for Done results.
void write_status(JsonWriter& w, const JobStatus& status);

}  // namespace refbmc::service
