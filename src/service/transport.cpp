#include "service/transport.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "model/aiger.hpp"
#include "util/log.hpp"

namespace refbmc::service {

namespace {

std::string error_response(const std::string& message) {
  JsonWriter w;
  w.begin_object();
  w.kv("ok", false);
  w.kv("error", message);
  w.end_object();
  return w.str();
}

void write_status_member(JsonWriter& w, const JobStatus& status) {
  w.key("status");
  write_status(w, status);
}

std::string handle_submit(JobServer& server, const JsonValue& req) {
  const std::string aiger = req.get_string("aiger");
  if (aiger.empty()) return error_response("submit: missing 'aiger'");

  api::CheckRequest check;
  try {
    check.net = model::read_aiger_string(aiger);
  } catch (const std::exception& e) {
    return error_response(std::string("submit: bad AIGER: ") + e.what());
  }
  check.bad_index = static_cast<std::size_t>(req.get_int("bad", 0));
  check.name = req.get_string("name");
  if (const JsonValue* opts = req.find("options"))
    check.options = parse_race_options(*opts);

  JobOptions job;
  const std::string prio = req.get_string("priority", "normal");
  if (const auto p = parse_priority(prio))
    job.priority = *p;
  else
    return error_response("submit: unknown priority '" + prio + "'");
  job.deadline_sec = req.get_number("deadline_sec", -1.0);
  job.use_cache = req.get_bool("use_cache", true);
  const bool wait = req.get_bool("wait", false);

  const SubmitOutcome outcome = server.submit(std::move(check), job);

  JsonWriter w;
  w.begin_object();
  w.kv("ok", true);
  w.kv("accepted", outcome.accepted);
  w.kv("id", outcome.id);
  if (!outcome.accepted) w.kv("reason", to_string(outcome.reason));
  if (outcome.accepted && wait) {
    if (const auto status = server.wait(outcome.id))
      write_status_member(w, *status);
  }
  w.end_object();
  return w.str();
}

std::string handle_poll(JobServer& server, const JsonValue& req) {
  const JobId id = req.get_uint64("id");
  const auto status = server.poll(id);
  if (!status) return error_response("unknown job id");
  JsonWriter w;
  w.begin_object();
  w.kv("ok", true);
  write_status_member(w, *status);
  w.end_object();
  return w.str();
}

std::string handle_events(JobServer& server, const JsonValue& req) {
  const JobId id = req.get_uint64("id");
  if (!server.poll(id)) return error_response("unknown job id");
  JsonWriter w;
  w.begin_object();
  w.kv("ok", true);
  w.key("events");
  w.begin_array();
  for (const ProgressEvent& e : server.events(id, req.get_uint64("after"))) {
    w.begin_object();
    w.kv("seq", e.seq);
    w.kv("depth", e.depth);
    w.kv("result", e.result == sat::Result::Sat
                       ? "sat"
                       : e.result == sat::Result::Unsat ? "unsat" : "unknown");
    w.kv("decisions", e.decisions);
    w.kv("conflicts", e.conflicts);
    w.kv("time_sec", e.time_sec);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string handle_cancel(JobServer& server, const JsonValue& req) {
  const bool cancelled = server.cancel(req.get_uint64("id"));
  JsonWriter w;
  w.begin_object();
  w.kv("ok", true);
  w.kv("cancelled", cancelled);
  w.end_object();
  return w.str();
}

std::string handle_wait(JobServer& server, const JsonValue& req) {
  const JobId id = req.get_uint64("id");
  const auto status =
      server.wait(id, req.get_number("timeout_sec", -1.0));
  if (!status) {
    if (!server.poll(id)) return error_response("unknown job id");
    return error_response("wait: timed out");
  }
  JsonWriter w;
  w.begin_object();
  w.kv("ok", true);
  write_status_member(w, *status);
  w.end_object();
  return w.str();
}

std::string handle_stats(JobServer& server) {
  const JobServer::Stats s = server.stats();
  JsonWriter w;
  w.begin_object();
  w.kv("ok", true);
  w.kv("submitted", s.submitted);
  w.kv("rejected", s.rejected);
  w.kv("completed", s.completed);
  w.kv("cancelled", s.cancelled);
  w.kv("deadline_evictions", s.deadline_evictions);
  w.kv("cache_hits", s.cache_hits);
  w.kv("cache_misses", s.cache_misses);
  w.kv("rank_warm_starts", s.rank_warm_starts);
  w.kv("queue_depth", static_cast<std::uint64_t>(s.queue_depth));
  w.kv("running", static_cast<std::uint64_t>(s.running));
  w.kv("cache_size", static_cast<std::uint64_t>(server.cache().size()));
  w.kv("cache_evictions", server.cache().evictions());
  w.end_object();
  return w.str();
}

}  // namespace

std::string handle_request(JobServer& server, const std::string& payload,
                           std::atomic<bool>* shutdown_requested) {
  std::string parse_error;
  const std::optional<JsonValue> req = json_parse(payload, &parse_error);
  if (!req || !req->is_object())
    return error_response("bad request: " +
                          (parse_error.empty() ? "not an object"
                                               : parse_error));
  const std::string op = req->get_string("op");
  if (op == "submit") return handle_submit(server, *req);
  if (op == "poll") return handle_poll(server, *req);
  if (op == "events") return handle_events(server, *req);
  if (op == "cancel") return handle_cancel(server, *req);
  if (op == "wait") return handle_wait(server, *req);
  if (op == "stats") return handle_stats(server);
  if (op == "shutdown") {
    if (shutdown_requested != nullptr)
      shutdown_requested->store(true, std::memory_order_release);
    JsonWriter w;
    w.begin_object();
    w.kv("ok", true);
    w.kv("shutting_down", true);
    w.end_object();
    return w.str();
  }
  return error_response("unknown op '" + op + "'");
}

// ---- SocketServer ----------------------------------------------------------

SocketServer::SocketServer(JobServer& server, std::string socket_path)
    : server_(server), socket_path_(std::move(socket_path)) {}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::start(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long";
    return false;
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  ::unlink(socket_path_.c_str());  // a stale path from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  accept_thread_ = std::thread([this] { accept_main(); });
  return true;
}

void SocketServer::accept_main() {
  set_log_thread_tag("accept");
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop()) or fatal
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const std::lock_guard<std::mutex> lock(handlers_mu_);
    handlers_.emplace_back([this, fd] {
      set_log_thread_tag("conn");
      std::string payload;
      while (read_frame(fd, payload)) {
        const std::string response =
            handle_request(server_, payload, &shutdown_requested_);
        if (!write_frame(fd, response)) break;
      }
      ::close(fd);
    });
  }
}

void SocketServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // Closing the listener makes the blocking accept() fail, ending the
  // accept loop; shutdown() first for platforms where close alone does
  // not wake it.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    const std::lock_guard<std::mutex> lock(handlers_mu_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers)
    if (t.joinable()) t.join();
  ::unlink(socket_path_.c_str());
}

// ---- Client ----------------------------------------------------------------

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect(const std::string& socket_path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long";
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    close();
    return false;
  }
  return true;
}

std::optional<JsonValue> Client::call(const std::string& payload,
                                      std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return std::nullopt;
  }
  if (!write_frame(fd_, payload)) {
    if (error != nullptr) *error = "send failed";
    return std::nullopt;
  }
  std::string response;
  if (!read_frame(fd_, response)) {
    if (error != nullptr) *error = "connection closed by server";
    return std::nullopt;
  }
  std::string parse_error;
  std::optional<JsonValue> v = json_parse(response, &parse_error);
  if (!v && error != nullptr) *error = "bad response: " + parse_error;
  if (v) last_raw_ = std::move(response);
  return v;
}

std::optional<JsonValue> Client::submit(const SubmitArgs& args,
                                        std::string* error) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "submit");
  w.kv("aiger", args.aiger);
  w.kv("bad", static_cast<std::uint64_t>(args.bad_index));
  if (!args.name.empty()) w.kv("name", args.name);
  w.kv("priority", to_string(args.priority));
  w.kv("deadline_sec", args.deadline_sec);
  w.kv("use_cache", args.use_cache);
  w.kv("wait", args.wait);
  w.key("options");
  write_race_options(w, args.options);
  w.end_object();
  return call(w.str(), error);
}

namespace {

std::string id_request(const char* op, JobId id) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", op);
  w.kv("id", id);
  w.end_object();
  return w.str();
}

}  // namespace

std::optional<JsonValue> Client::poll(JobId id, std::string* error) {
  return call(id_request("poll", id), error);
}

std::optional<JsonValue> Client::events(JobId id, std::uint64_t after_seq,
                                        std::string* error) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "events");
  w.kv("id", id);
  w.kv("after", after_seq);
  w.end_object();
  return call(w.str(), error);
}

std::optional<JsonValue> Client::cancel(JobId id, std::string* error) {
  return call(id_request("cancel", id), error);
}

std::optional<JsonValue> Client::wait(JobId id, double timeout_sec,
                                      std::string* error) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "wait");
  w.kv("id", id);
  w.kv("timeout_sec", timeout_sec);
  w.end_object();
  return call(w.str(), error);
}

std::optional<JsonValue> Client::stats(std::string* error) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "stats");
  w.end_object();
  return call(w.str(), error);
}

std::optional<JsonValue> Client::shutdown(std::string* error) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "shutdown");
  w.end_object();
  return call(w.str(), error);
}

}  // namespace refbmc::service
