#include "sat/clause.hpp"

namespace refbmc::sat {

ClauseRef ClauseArena::alloc(const std::vector<Lit>& lits, ClauseId id,
                             bool learnt) {
  REFBMC_EXPECTS(!lits.empty());
  const auto cref = static_cast<ClauseRef>(data_.size());
  data_.reserve(data_.size() + Clause::kHeaderWords + lits.size());
  data_.push_back(id);
  data_.push_back((static_cast<std::uint32_t>(lits.size()) << 2) |
                  (learnt ? 2u : 0u));
  data_.push_back(0);  // activity = 0.0f bit pattern
  for (const Lit l : lits)
    data_.push_back(static_cast<std::uint32_t>(l.index()));
  return cref;
}

void ClauseArena::free_clause(ClauseRef cref) {
  Clause c = get(cref);
  REFBMC_ASSERT(!c.dead());
  wasted_ += Clause::kHeaderWords + c.size();
  c.mark_dead();
}

void ClauseArena::garbage_collect(
    std::vector<std::pair<ClauseRef, ClauseRef>>& relocation) {
  relocation.clear();
  std::size_t write = 0;
  std::size_t read = 0;
  while (read < data_.size()) {
    Clause c(data_.data() + read);
    const std::size_t words = Clause::kHeaderWords + c.size();
    if (!c.dead()) {
      relocation.emplace_back(static_cast<ClauseRef>(read),
                              static_cast<ClauseRef>(write));
      if (write != read)
        std::memmove(data_.data() + write, data_.data() + read,
                     words * sizeof(std::uint32_t));
      write += words;
    }
    read += words;
  }
  data_.resize(write);
  wasted_ = 0;
}

}  // namespace refbmc::sat
