#include "sat/clause.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace refbmc::sat {

void ClauseArena::charge(std::size_t bytes) {
  allocated_bytes_ += bytes;
  if (mem_ != nullptr) mem_->add(bytes);
}

void ClauseArena::credit(std::size_t bytes) {
  REFBMC_ASSERT(bytes <= allocated_bytes_);
  allocated_bytes_ -= bytes;
  if (mem_ != nullptr) mem_->sub(bytes);
}

std::uint32_t ClauseArena::open_chunk(std::size_t words) {
  const bool observed = obs::metrics_active();
  const std::uint64_t t0 = observed ? obs::monotonic_now_us() : 0;
  std::uint32_t ci;
  if (!free_chunks_.empty()) {
    ci = free_chunks_.back();
    free_chunks_.pop_back();
  } else {
    REFBMC_ASSERT(chunks_.size() < kMaxChunks);
    ci = static_cast<std::uint32_t>(chunks_.size());
    chunks_.emplace_back();
  }
  Chunk& ch = chunks_[ci];
  ch.words.resize(words);
  ch.used = 0;
  charge(words * sizeof(std::uint32_t));
  if (observed)
    obs::metrics().histogram("arena.chunk_alloc_us")
        .observe(obs::monotonic_now_us() - t0);
  return ci;
}

void ClauseArena::release_chunk(std::uint32_t index) {
  Chunk& ch = chunks_[index];
  credit(ch.words.size() * sizeof(std::uint32_t));
  std::vector<std::uint32_t>().swap(ch.words);
  ch.used = 0;
  free_chunks_.push_back(index);
}

ClauseRef ClauseArena::alloc(const std::vector<Lit>& lits, ClauseId id,
                             bool learnt) {
  REFBMC_EXPECTS(!lits.empty());
  const std::size_t footprint = Clause::kHeaderWords + lits.size();
  std::uint32_t ci;
  if (footprint > kChunkWords) {
    // Dedicated exact-size chunk: the clause lives alone and is never
    // moved by collection.
    ci = open_chunk(footprint);
  } else if (chunks_.empty() ||
             chunks_[active_].used + footprint >
                 chunks_[active_].words.size()) {
    // The active chunk's tail remainder (if any) stays unused until the
    // next collection packs it away; live clauses are untouched.
    ci = open_chunk(kChunkWords);
    active_ = ci;
  } else {
    ci = active_;
  }
  Chunk& ch = chunks_[ci];
  const std::uint32_t off = ch.used;
  std::uint32_t* w = ch.words.data() + off;
  w[0] = id;
  w[1] = (static_cast<std::uint32_t>(lits.size()) << 9) |
         (learnt ? 2u : 0u);  // lbd bits start at 0
  w[2] = 0;  // activity = 0.0f bit pattern
  w[3] = static_cast<std::uint32_t>(lits.size());  // capacity
  for (std::size_t i = 0; i < lits.size(); ++i)
    w[Clause::kHeaderWords + i] = static_cast<std::uint32_t>(lits[i].index());
  ch.used += static_cast<std::uint32_t>(footprint);
  used_ += footprint;
  return (ci << kChunkBits) | off;
}

void ClauseArena::free_clause(ClauseRef cref) {
  Clause c = get(cref);
  REFBMC_ASSERT(!c.dead());
  // The tail beyond size() (if the clause was shrunk) is already counted.
  wasted_ += Clause::kHeaderWords + c.size();
  c.mark_dead();
}

void ClauseArena::shrink_clause(ClauseRef cref, std::uint32_t n) {
  Clause c = get(cref);
  REFBMC_ASSERT(!c.dead());
  REFBMC_ASSERT(n >= 1 && n <= c.size());
  wasted_ += c.size() - n;
  c.set_size(n);
}

void ClauseArena::garbage_collect(
    std::vector<std::pair<ClauseRef, ClauseRef>>& relocation) {
  relocation.clear();
  // In-place compaction in (chunk, offset) order: the write cursor
  // (wc, wo) never overtakes the read cursor, so a clause always moves
  // into space that has already been read — no full-arena scratch copy.
  // Oversize (dedicated-chunk) clauses stay in place when live and
  // release their whole chunk when dead; the write cursor skips them.
  bool writing = false;
  std::uint32_t wc = 0, wo = 0;
  std::size_t live_words = 0;
  for (std::uint32_t rc = 0; rc < chunks_.size(); ++rc) {
    Chunk& ch = chunks_[rc];
    if (ch.words.empty()) continue;  // already on the free list
    if (ch.words.size() > kChunkWords) {
      Clause c(ch.words.data());
      if (c.dead()) {
        release_chunk(rc);
      } else {
        const auto cref = static_cast<ClauseRef>(rc << kChunkBits);
        relocation.emplace_back(cref, cref);
        live_words += ch.used;
      }
      continue;
    }
    std::uint32_t ro = 0;
    while (ro < ch.used) {
      Clause c(ch.words.data() + ro);
      const std::uint32_t live_lits = c.size();  // before the move clobbers c
      const std::uint32_t footprint = Clause::kHeaderWords + c.capacity();
      const std::uint32_t live = Clause::kHeaderWords + live_lits;
      if (!c.dead()) {
        if (!writing) {
          writing = true;
          wc = rc;
          wo = 0;
        } else if (wc != rc &&
                   wo + live > chunks_[wc].words.size()) {
          // Close the full write chunk and advance to the next normal
          // chunk (skipping oversize and released ones); lands on rc at
          // the latest, where wo = 0 <= ro keeps the move in-place safe.
          chunks_[wc].used = wo;
          do {
            ++wc;
          } while (wc < rc && chunks_[wc].words.size() != kChunkWords);
          wo = 0;
        }
        if (wc != rc || wo != ro)
          std::memmove(chunks_[wc].words.data() + wo, ch.words.data() + ro,
                       live * sizeof(std::uint32_t));
        Clause(chunks_[wc].words.data() + wo).set_capacity(live_lits);
        relocation.emplace_back(static_cast<ClauseRef>((rc << kChunkBits) | ro),
                                static_cast<ClauseRef>((wc << kChunkBits) | wo));
        wo += live;
        live_words += live;
      }
      ro += footprint;
    }
  }
  if (writing) {
    chunks_[wc].used = wo;
    active_ = wc;
    // Every normal chunk past the final write position was compacted out.
    for (std::uint32_t ci = wc + 1;
         ci < static_cast<std::uint32_t>(chunks_.size()); ++ci)
      if (chunks_[ci].words.size() == kChunkWords) release_chunk(ci);
  } else {
    // Nothing live in the normal chunks: keep the lowest buffered normal
    // chunk (emptied) as the active spare, release the rest.
    bool kept = false;
    for (std::uint32_t ci = 0;
         ci < static_cast<std::uint32_t>(chunks_.size()); ++ci) {
      if (chunks_[ci].words.size() != kChunkWords) continue;
      if (!kept) {
        chunks_[ci].used = 0;
        active_ = ci;
        kept = true;
      } else {
        release_chunk(ci);
      }
    }
  }
  used_ = live_words;
  wasted_ = 0;
}

}  // namespace refbmc::sat
