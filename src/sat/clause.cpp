#include "sat/clause.hpp"

namespace refbmc::sat {

ClauseRef ClauseArena::alloc(const std::vector<Lit>& lits, ClauseId id,
                             bool learnt) {
  REFBMC_EXPECTS(!lits.empty());
  const auto cref = static_cast<ClauseRef>(data_.size());
  data_.reserve(data_.size() + Clause::kHeaderWords + lits.size());
  data_.push_back(id);
  data_.push_back((static_cast<std::uint32_t>(lits.size()) << 9) |
                  (learnt ? 2u : 0u));  // lbd bits start at 0
  data_.push_back(0);  // activity = 0.0f bit pattern
  data_.push_back(static_cast<std::uint32_t>(lits.size()));  // capacity
  for (const Lit l : lits)
    data_.push_back(static_cast<std::uint32_t>(l.index()));
  return cref;
}

void ClauseArena::free_clause(ClauseRef cref) {
  Clause c = get(cref);
  REFBMC_ASSERT(!c.dead());
  // The tail beyond size() (if the clause was shrunk) is already counted.
  wasted_ += Clause::kHeaderWords + c.size();
  c.mark_dead();
}

void ClauseArena::shrink_clause(ClauseRef cref, std::uint32_t n) {
  Clause c = get(cref);
  REFBMC_ASSERT(!c.dead());
  REFBMC_ASSERT(n >= 1 && n <= c.size());
  wasted_ += c.size() - n;
  c.set_size(n);
}

void ClauseArena::garbage_collect(
    std::vector<std::pair<ClauseRef, ClauseRef>>& relocation) {
  relocation.clear();
  std::size_t write = 0;
  std::size_t read = 0;
  while (read < data_.size()) {
    Clause c(data_.data() + read);
    // Advance by the allocation footprint; copy only the live prefix, so
    // shrunk tails are reclaimed here.
    const std::uint32_t live_lits = c.size();  // before the move clobbers c
    const std::size_t footprint = Clause::kHeaderWords + c.capacity();
    const std::size_t live = Clause::kHeaderWords + live_lits;
    if (!c.dead()) {
      relocation.emplace_back(static_cast<ClauseRef>(read),
                              static_cast<ClauseRef>(write));
      if (write != read)
        std::memmove(data_.data() + write, data_.data() + read,
                     live * sizeof(std::uint32_t));
      Clause(data_.data() + write).set_capacity(live_lits);
      write += live;
    }
    read += footprint;
  }
  data_.resize(write);
  wasted_ = 0;
}

}  // namespace refbmc::sat
