#include "sat/dimacs.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace refbmc::sat {

Cnf parse_dimacs(std::istream& in) {
  Cnf cnf;
  bool have_header = false;
  std::vector<Lit> clause;

  std::string line;
  while (std::getline(in, line)) {
    // Tolerate leading whitespace before comments, the header, and
    // clause data (all appear in files in the wild).
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;  // blank / whitespace-only
    // Comment lines may appear anywhere — before the header, between
    // clauses, and between the literals of a clause spanning lines.
    if (line[start] == 'c') continue;
    std::istringstream ls(line.substr(start));
    if (line[start] == 'p') {
      std::string p, fmt;
      long long nv = 0;
      long long nc = 0;
      if (!(ls >> p >> fmt >> nv >> nc) || p != "p" || fmt != "cnf" ||
          nv < 0 || nc < 0 || nv > INT32_MAX)
        throw std::invalid_argument("dimacs: malformed problem line: " + line);
      std::string rest;
      if (ls >> rest)
        throw std::invalid_argument(
            "dimacs: trailing tokens on problem line: " + line);
      if (have_header)
        throw std::invalid_argument("dimacs: duplicate problem line");
      have_header = true;
      cnf.num_vars = static_cast<int>(nv);
      cnf.clauses.reserve(static_cast<std::size_t>(nc));
      continue;
    }
    if (!have_header)
      throw std::invalid_argument("dimacs: clause before problem line");
    long long v;
    while (ls >> v) {
      if (v == 0) {
        cnf.clauses.push_back(clause);
        clause.clear();
        continue;
      }
      const long long mag = v > 0 ? v : -v;
      if (mag > cnf.num_vars)
        throw std::invalid_argument(
            "dimacs: literal " + std::to_string(v) +
            " exceeds the declared variable count " +
            std::to_string(cnf.num_vars));
      clause.push_back(Lit::from_dimacs(static_cast<int>(v)));
    }
    if (!ls.eof())
      throw std::invalid_argument("dimacs: unexpected token in: " + line);
  }
  if (!clause.empty())
    throw std::invalid_argument("dimacs: unterminated final clause");
  if (!have_header)
    throw std::invalid_argument("dimacs: missing problem line");
  return cnf;
}

Cnf parse_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return parse_dimacs(in);
}

Cnf parse_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("dimacs: cannot open file: " + path);
  return parse_dimacs(in);
}

void write_dimacs(std::ostream& out, const Cnf& cnf) {
  out << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << '\n';
  for (const auto& clause : cnf.clauses) {
    for (const Lit l : clause) out << l.to_dimacs() << ' ';
    out << "0\n";
  }
}

std::string to_dimacs_string(const Cnf& cnf) {
  std::ostringstream os;
  write_dimacs(os, cnf);
  return os.str();
}

}  // namespace refbmc::sat
