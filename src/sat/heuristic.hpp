// Decision heuristics: Chaff-style VSIDS and the paper's refined ordering.
//
// VSIDS (paper §3.3, following Chaff): every literal l carries
//     cha_score(l), initialised to its occurrence count in the original
//     formula; periodically (every `update_period` conflicts)
//     cha_score(l) = cha_score(l)/2 + new_lit_counts(l),
// where new_lit_counts(l) counts the conflict clauses added since the last
// update that contain l.  The free literal with the highest score is
// decided first.
//
// Refined ordering (§3.2–3.3): an external per-variable rank — the
// accumulated unsat-core score bmc_score(x) — is combined with VSIDS:
//   * Static : order primarily by bmc_score, cha_score breaks ties, for
//              the whole search.
//   * Dynamic: same, but fall back to pure VSIDS once
//              #decisions > #original_literals / switch_divisor
//              (the paper fixes switch_divisor = 64).
//
// Implementation note: we keep a max-heap over *variables*; the primary
// key is bmc_score(var) (identically 0 under RankMode::None), the
// secondary key is max(cha_score(v), cha_score(~v)), and the decision
// phase is the literal with the larger cha_score.  This realises
// "bmc_score primary, cha_score tiebreak" with one mechanism.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/types.hpp"
#include "util/heap.hpp"

namespace refbmc::sat {

enum class RankMode {
  None,     // pure VSIDS (baseline BMC)
  Static,   // bmc_score primary throughout, cha_score breaks ties
  Dynamic,  // bmc_score primary, VSIDS fallback on difficulty
  Replace,  // bmc_score only — the "replace" alternative of §3.3 that the
            // paper mentions and passes over (ties broken by index)
};

inline const char* to_string(RankMode m) {
  switch (m) {
    case RankMode::None: return "vsids";
    case RankMode::Static: return "static";
    case RankMode::Dynamic: return "dynamic";
    case RankMode::Replace: return "replace";
  }
  return "?";
}

class DecisionHeuristic {
 public:
  explicit DecisionHeuristic(int update_period = 256);

  // The internal heap's comparator captures `this`; the object must stay
  // where it was constructed.
  DecisionHeuristic(const DecisionHeuristic&) = delete;
  DecisionHeuristic& operator=(const DecisionHeuristic&) = delete;

  void set_rank_mode(RankMode mode) { mode_ = mode; }
  RankMode rank_mode() const { return mode_; }

  /// Registers a new variable (scores start at 0 until literal counts are
  /// seeded by on_original_literal).
  void add_var();
  int num_vars() const { return static_cast<int>(rank_.size()); }

  /// Seeds cha_score: call once per literal occurrence in the original
  /// formula.
  void on_original_literal(Lit l);

  /// Sets the external bmc_score for a variable (default 0).
  void set_rank(Var v, double score);
  double rank(Var v) const { return rank_[static_cast<std::size_t>(v)]; }

  /// Accounts a literal of a freshly learned conflict clause.
  void on_learned_literal(Lit l);

  /// Called once per conflict; performs the periodic halve-and-add update
  /// (and heap rebuild) when the period elapses.
  void on_conflict();

  /// Decision bookkeeping for the dynamic policy.  `num_original_literals`
  /// is the literal count of the original formula.  Returns true when this
  /// call switched the policy from rank-primary to pure VSIDS.
  bool on_decision(std::uint64_t num_decisions,
                   std::uint64_t num_original_literals, int switch_divisor);

  /// True while the bmc_score is the primary sort key.
  bool rank_active() const {
    return (mode_ == RankMode::Static) || (mode_ == RankMode::Replace) ||
           (mode_ == RankMode::Dynamic && !switched_);
  }
  bool switched() const { return switched_; }

  /// Re-arms the dynamic fallback at the start of a new solve() call
  /// (the switch decision is per SAT instance, per §3.3).
  void reset_switch() {
    if (switched_) {
      switched_ = false;
      heap_.rebuild();
    }
  }

  double cha_score(Lit l) const {
    return score_[static_cast<std::size_t>(l.index())];
  }

  // -- heap interface used by the solver ------------------------------
  void insert(Var v) {
    if (!heap_.contains(v)) heap_.insert(v);
  }
  bool heap_empty() const { return heap_.empty(); }
  Var pop() { return heap_.pop(); }
  void rebuild_heap() { heap_.rebuild(); }

  /// Picks the decision phase for `v`: the literal with the larger
  /// cha_score (positive wins ties).
  Lit pick_phase(Var v) const {
    const Lit pos = Lit::make(v, false);
    const Lit neg = Lit::make(v, true);
    return cha_score(neg) > cha_score(pos) ? neg : pos;
  }

  std::uint64_t num_updates() const { return num_updates_; }

 private:
  struct VarGreater {
    const DecisionHeuristic* h;
    bool operator()(int a, int b) const { return h->var_greater(a, b); }
  };

  bool var_greater(Var a, Var b) const {
    if (rank_active()) {
      const double ra = rank_[static_cast<std::size_t>(a)];
      const double rb = rank_[static_cast<std::size_t>(b)];
      if (ra != rb) return ra > rb;
      if (mode_ == RankMode::Replace) return a < b;  // no VSIDS tiebreak
    }
    const double ca = var_cha(a);
    const double cb = var_cha(b);
    if (ca != cb) return ca > cb;
    return a < b;  // deterministic total order
  }

  double var_cha(Var v) const {
    const auto p = static_cast<std::size_t>(Lit::make(v, false).index());
    const auto n = static_cast<std::size_t>(Lit::make(v, true).index());
    return score_[p] > score_[n] ? score_[p] : score_[n];
  }

  void periodic_update();

  RankMode mode_ = RankMode::None;
  bool switched_ = false;
  int update_period_;
  int conflicts_since_update_ = 0;
  std::uint64_t num_updates_ = 0;

  std::vector<double> score_;       // per literal: cha_score
  std::vector<std::uint32_t> new_;  // per literal: new_lit_counts
  std::vector<double> rank_;        // per variable: bmc_score

  IndexedMaxHeap<VarGreater> heap_{VarGreater{this}};
};

}  // namespace refbmc::sat
