// Simplified Conflict-Dependency Graph (paper §3.1).
//
// During CDCL search every learned clause is derived by resolution from a
// set of antecedent clauses (the conflicting clause plus the reason clauses
// resolved during 1UIP analysis and clause minimization).  Recording those
// dependencies as lists of pseudo-IDs — an integer per clause instead of its
// literals — lets the solver keep deleting learned clauses (reduceDB) while
// still being able to reconstruct a complete unsatisfiable core at the end:
// traverse backward from the final (empty-clause) conflict and collect the
// original-clause leaves.
//
// Ids are dense and monotonically increasing but original and learned ids
// may interleave: with incremental solving, new original clauses arrive
// after clauses have been learned.  Every id must be registered, in order,
// as either original (leaf) or learned (with its antecedents).
//
// Memory: one uint32 per antecedent edge, "small compared to the number of
// literals in the conflict clauses, which is often in the hundreds".
#pragma once

#include <cstdint>
#include <vector>

#include "sat/types.hpp"

namespace refbmc::sat {

class ConflictDependencyGraph {
 public:
  ConflictDependencyGraph() = default;

  /// Registers the next clause id as an original clause (a graph leaf).
  /// Ids must be registered densely in increasing order starting at 1.
  void register_original(ClauseId id);

  /// Registers the next clause id as a learned clause with its antecedent
  /// ids (each antecedent must be a previously registered id).
  void add_learned(ClauseId id, const std::vector<ClauseId>& antecedents);

  /// Records the antecedents of the final conflict (the empty clause, or
  /// the refutation of the current assumptions).  May be overwritten by a
  /// later solve.
  void set_final_conflict(const std::vector<ClauseId>& antecedents);
  bool has_final_conflict() const { return has_final_; }

  /// Backward traversal from the final conflict; returns the sorted ids of
  /// original clauses that are reachable — the unsatisfiable core.
  std::vector<ClauseId> original_core() const;

  ClauseId num_clauses() const {
    return static_cast<ClauseId>(kind_.size());
  }
  bool is_original(ClauseId id) const {
    return id >= 1 && id <= kind_.size() && kind_[id - 1] == 0;
  }

  std::size_t num_learned_nodes() const { return num_learned_; }
  /// Total antecedent edges (uint32 each) — the memory overhead measure.
  std::size_t num_edges() const { return edges_.size(); }
  std::size_t memory_bytes() const {
    return edges_.capacity() * sizeof(ClauseId) +
           offsets_.capacity() * sizeof(std::uint64_t) +
           kind_.capacity() * sizeof(char);
  }

  void clear();

 private:
  // Per id (1-based → index id-1): kind (0 original, 1 learned) and the
  // edge range [offsets_[id-1], offsets_[id]) into edges_; originals own
  // empty ranges.  offsets_ has one extra leading 0.
  std::vector<char> kind_;
  std::vector<std::uint64_t> offsets_{0};
  std::vector<ClauseId> edges_;
  std::vector<ClauseId> final_;
  std::size_t num_learned_ = 0;
  bool has_final_ = false;
};

}  // namespace refbmc::sat
