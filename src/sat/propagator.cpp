#include "sat/propagator.hpp"

namespace refbmc::sat {

void Propagator::attach(ClauseArena& arena, ClauseRef cref) {
  const Clause c = arena.get(cref);
  REFBMC_ASSERT(c.size() >= 2);
  REFBMC_ASSERT((cref & kBinaryTag) == 0);
  if (c.size() == 2) {
    push_watcher(list(c[0]), Watcher{cref | kBinaryTag, c[1]});
    push_watcher(list(c[1]), Watcher{cref | kBinaryTag, c[0]});
    return;
  }
  push_watcher(list(c[0]), Watcher{cref, c[1]});
  push_watcher(list(c[1]), Watcher{cref, c[0]});
}

void Propagator::remove_watcher(std::vector<Watcher>& wl, ClauseRef cref) {
  for (std::size_t i = 0; i < wl.size(); ++i) {
    if (wl[i].cref() == cref) {
      wl[i] = wl.back();
      wl.pop_back();
      return;
    }
  }
  REFBMC_ASSERT_MSG(false, "watcher to detach not found");
}

void Propagator::detach(ClauseArena& arena, ClauseRef cref) {
  const Clause c = arena.get(cref);
  remove_watcher(list(c[0]), cref);
  remove_watcher(list(c[1]), cref);
}

void Propagator::on_clause_shrunk(ClauseArena& arena, ClauseRef cref) {
  const Clause c = arena.get(cref);
  if (c.size() != 2) return;  // still long: watchers on lits 0/1 are intact
  // Shrinking never touches the watched positions, so the clause is still
  // watched under ~c[0] and ~c[1]; re-tag those entries as inlined
  // binaries (the cached literal becomes the respective other literal).
  for (int side = 0; side < 2; ++side) {
    auto& wl = list(c[static_cast<std::uint32_t>(side)]);
    for (auto& w : wl) {
      if (w.cref() == cref) {
        w = Watcher{cref | kBinaryTag, c[static_cast<std::uint32_t>(1 - side)]};
        break;
      }
    }
  }
}

ClauseRef Propagator::propagate(Trail& trail, ClauseArena& arena,
                                SolverStats& stats) {
  // Counters stay in registers for the whole fixpoint; one flush at exit.
  std::uint64_t props = 0, bin_props = 0, skips = 0;
  ClauseRef result = kClauseRefUndef;
  while (!trail.fully_propagated()) {
    const Lit p = trail.dequeue();
    ++props;
    auto& wl = watches_[static_cast<std::size_t>(p.index())];
    std::size_t i = 0, j = 0;
    const std::size_t n = wl.size();
    ClauseRef confl = kClauseRefUndef;
    while (i < n) {
      const Watcher w = wl[i++];
      const lbool bval = trail.value(w.blocker);
      if (bval == l_True) {
        wl[j++] = w;
        if (!w.binary()) ++skips;
        continue;
      }
      if (w.binary()) {
        // The watcher is the whole clause: unit or conflicting, and the
        // arena is never touched.
        wl[j++] = w;
        if (bval == l_False) {
          confl = w.cref();
          trail.flush_queue();
          while (i < n) wl[j++] = wl[i++];
          break;
        }
        trail.assign(w.blocker, w.cref());
        ++bin_props;
        continue;
      }
      Clause c = arena.get(w.cref());
      // Ensure the false literal (~p) is at position 1.
      const Lit not_p = ~p;
      if (c[0] == not_p) c.swap_lits(0, 1);
      REFBMC_ASSERT(c[1] == not_p);
      const Lit first = c[0];
      if (first != w.blocker && trail.value(first) == l_True) {
        wl[j++] = Watcher{w.tagged, first};
        continue;
      }
      // Look for a replacement watch.
      bool found = false;
      for (std::uint32_t k = 2; k < c.size(); ++k) {
        if (trail.value(c[k]) != l_False) {
          c.swap_lits(1, k);
          push_watcher(list(c[1]), Watcher{w.tagged, first});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      wl[j++] = Watcher{w.tagged, first};
      if (trail.value(first) == l_False) {
        confl = w.cref();
        trail.flush_queue();
        while (i < n) wl[j++] = wl[i++];
        break;
      }
      trail.assign(first, w.cref());
    }
    wl.resize(j);
    if (confl != kClauseRefUndef) {
      result = confl;
      break;
    }
  }
  stats.propagations += props;
  stats.binary_propagations += bin_props;
  stats.blocker_skips += skips;
  return result;
}

void Propagator::relocate(
    const std::vector<std::pair<ClauseRef, ClauseRef>>& map) {
  for (auto& wl : watches_)
    for (auto& w : wl)
      w.tagged = relocate_ref(w.cref(), map) | (w.tagged & kBinaryTag);
}

std::size_t Propagator::num_binary_watches(Lit l) const {
  std::size_t n = 0;
  for (const Watcher& w : watches_[static_cast<std::size_t>(l.index())])
    if (w.binary()) ++n;
  return n;
}

std::size_t Propagator::num_long_watches(Lit l) const {
  std::size_t n = 0;
  for (const Watcher& w : watches_[static_cast<std::size_t>(l.index())])
    if (!w.binary()) ++n;
  return n;
}

}  // namespace refbmc::sat
