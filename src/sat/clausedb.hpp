// ClauseDB: the clause store of the CDCL core.
//
// Owns the ClauseArena, the dense clause-id space shared by original and
// learned clauses (the pseudo-IDs of the paper's §3.1 dependency graph),
// the learned-clause list with its activities, and the deletion policy.
//
// Learned clauses are tiered by literal-block distance (LBD — the number
// of distinct decision levels in the clause when it was derived):
//
//   * glue  (lbd <= glue_lbd): never deleted.  These are the clauses that
//     chain propagations across levels; losing them costs re-derivation.
//   * mid   (lbd <= tier_lbd): deleted only after the local tier is
//     exhausted.
//   * local (the rest): first against the wall, lowest activity first.
//
// This replaces the pure activity-based reduceDB of the monolithic
// solver: a reduce run deletes half of the non-glue candidates, visiting
// them worst-first (higher LBD, then lower activity).  Binary and locked
// (currently-a-reason) clauses are always kept.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sat/clause.hpp"
#include "sat/propagator.hpp"
#include "sat/stats.hpp"
#include "sat/trail.hpp"
#include "sat/types.hpp"

namespace refbmc::sat {

class ClauseDB {
 public:
  ClauseDB(double clause_decay, int glue_lbd, int tier_lbd)
      : clause_decay_(clause_decay),
        glue_lbd_(static_cast<std::uint32_t>(glue_lbd)),
        tier_lbd_(static_cast<std::uint32_t>(tier_lbd)) {
    REFBMC_EXPECTS(glue_lbd >= 0 && tier_lbd >= glue_lbd);
  }

  ClauseArena& arena() { return arena_; }
  const ClauseArena& arena() const { return arena_; }
  Clause get(ClauseRef cref) { return arena_.get(cref); }

  // ---- clause-id space ------------------------------------------------
  /// Consumes the next id for an original clause and records its
  /// (deduplicated) literals for core reporting.  `counted` is false for
  /// tautologies, which keep their id but do not contribute literals.
  ClauseId register_original(const std::vector<Lit>& dedup_lits,
                             bool counted);
  /// Consumes the next id for a learned clause (literals live in the
  /// arena only).
  ClauseId register_learned();

  ClauseId last_id() const { return last_id_; }
  bool is_original_clause(ClauseId id) const {
    return id >= 1 && id <= last_id_ && id_is_original_[id - 1] != 0;
  }
  const std::vector<Lit>& original_clause(ClauseId id) const {
    REFBMC_EXPECTS_MSG(is_original_clause(id), "not an original clause id");
    return lits_by_id_[id - 1];
  }
  const std::vector<ClauseId>& original_ids() const { return original_ids_; }
  std::size_t num_original_clauses() const { return original_ids_.size(); }
  std::uint64_t num_original_literals() const { return num_orig_lits_; }

  // ---- allocation -----------------------------------------------------
  ClauseRef alloc_original(const std::vector<Lit>& lits, ClauseId id) {
    return arena_.alloc(lits, id, /*learnt=*/false);
  }
  /// Allocates a learned clause with its LBD and initial activity; adds
  /// it to the deletion-managed list when `managed` (size >= 2; unit
  /// learned clauses are permanent root facts and stay out).
  ClauseRef alloc_learned(const std::vector<Lit>& lits, ClauseId id,
                          std::uint32_t lbd, bool managed);

  std::size_t num_learned() const { return learned_.size(); }
  const std::vector<ClauseRef>& learned() const { return learned_; }

  /// Removes a managed learned clause (vivification replaced or proved
  /// it satisfied) from the deletion list and frees its arena storage.
  /// The caller must have detached it from the propagator first.
  void remove_learned(ClauseRef cref);

  // ---- activity / LBD maintenance -------------------------------------
  /// Bumps a learned clause used in conflict analysis and lowers its
  /// stored LBD when the clause is now supported by fewer levels.
  void on_used_in_analysis(Clause c, std::uint32_t current_lbd);
  void decay_activity() { cla_inc_ /= clause_decay_; }

  /// LBD of `lits` under the current trail: distinct non-root decision
  /// levels.
  std::uint32_t compute_lbd(const std::vector<Lit>& lits,
                            const Trail& trail) const;
  /// Capped variant for update-on-use: stops counting at `cap` (the
  /// stored LBD) — once that many distinct levels are seen the clause
  /// cannot improve, so the walk ends early.  Returns cap when no
  /// improvement is possible.
  std::uint32_t compute_lbd_capped(const Clause& c, const Trail& trail,
                                   std::uint32_t cap) const;

  // ---- deletion and compaction ----------------------------------------
  /// One tiered reduceDB run (see file comment).  Kept clauses are
  /// strengthened in place when `strengthen` (root-false tail literals
  /// dropped; a clause shrunk to binary migrates into the propagator's
  /// inlined lists).  Follows up with arena compaction when worthwhile,
  /// patching the propagator's and trail's references.
  void reduce(Trail& trail, Propagator& propagator, bool strengthen,
              SolverStats& stats);

  /// Compacts the arena when enough space is dead, relocating watches,
  /// reasons, and the learned list.  Exposed for the solver's use outside
  /// reduce (e.g. tests); no-op when compaction is not worthwhile.
  void garbage_collect_if_needed(Trail& trail, Propagator& propagator,
                                 SolverStats& stats);

  /// Frame retirement sweep (incremental sessions, at decision level 0):
  /// frees every clause satisfied by a root-true literal over a variable
  /// marked 2 ("dead guard") in `guard_state`, detaching it from the
  /// propagator first.  Clauses that are the reason of a root assignment
  /// — including the retirement units themselves — are kept (they anchor
  /// CDG antecedents and the root trail).  Returns the number of clauses
  /// freed; the caller should follow up with garbage_collect_if_needed.
  std::uint64_t retire_root_satisfied(Trail& trail, Propagator& propagator,
                                      const std::vector<char>& guard_state);

 private:
  bool clause_locked(ClauseRef cref, const Trail& trail) const;
  void strengthen_learned(ClauseRef cref, Trail& trail,
                          Propagator& propagator, SolverStats& stats);

  ClauseArena arena_;
  double clause_decay_;
  std::uint32_t glue_lbd_;
  std::uint32_t tier_lbd_;
  double cla_inc_ = 1.0;

  ClauseId last_id_ = 0;                      // unified id counter
  std::vector<std::vector<Lit>> lits_by_id_;  // originals only
  std::vector<char> id_is_original_;          // per id
  std::vector<ClauseId> original_ids_;
  std::uint64_t num_orig_lits_ = 0;

  std::vector<ClauseRef> learned_;

  // compute_lbd scratch: distinct levels are counted by stamping each
  // level with a generation counter — O(size), no sorting, and the hot
  // analyze loop calls this for every learnt antecedent.
  mutable std::vector<std::uint64_t> level_stamp_;
  mutable std::uint64_t stamp_gen_ = 0;
};

}  // namespace refbmc::sat
