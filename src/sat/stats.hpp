// Search statistics.  "propagations" is the paper's "number of
// implications" (Fig. 7); "decisions" is its "number of decisions".
#pragma once

#include <cstdint>

namespace refbmc::sat {

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;  // implications
  /// Assignments produced by the inlined binary watch lists (no arena
  /// access at all) — the fastest BCP path.
  std::uint64_t binary_propagations = 0;
  /// Long-clause watcher visits short-circuited by a satisfied blocking
  /// literal (clause never fetched from the arena).
  std::uint64_t blocker_skips = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t deleted_clauses = 0;
  std::uint64_t minimized_literals = 0;  // removed by clause minimization
  /// Root-false literals dropped in place from kept learned clauses
  /// during reduceDB (only with track_cdg off; see Solver::reduce_db).
  std::uint64_t strengthened_literals = 0;
  std::uint64_t vsids_updates = 0;
  std::uint64_t reduce_db_runs = 0;
  /// Lemma sharing (portfolio clause exchange; zero without an attached
  /// ClauseExchange): learned clauses the exchange accepted (filter
  /// passes it refused are not counted), foreign clauses attached after
  /// root simplification, and propagations performed while integrating
  /// them at decision level 0.
  std::uint64_t clauses_exported = 0;
  std::uint64_t clauses_imported = 0;
  std::uint64_t import_propagations = 0;
  /// Shared-ordering refreshes applied (zero without an attached
  /// RankRefresh): times the solver re-fed its decision queue with an
  /// advanced rank projection at a level-0 boundary.
  std::uint64_t rank_refreshes = 0;
  /// Learned clauses spared by the ClauseDB's glue protection (LBD at or
  /// below glue_lbd) across all reduceDB runs.
  std::uint64_t glue_protected = 0;
  std::uint64_t arena_gcs = 0;
  /// Restart-boundary inprocessing (zero with vivify_interval 0):
  /// vivification passes run, learned clauses shortened or replaced,
  /// literals removed from them, and wall time spent in the passes.
  std::uint64_t vivify_rounds = 0;
  std::uint64_t vivified_clauses = 0;
  std::uint64_t vivified_literals = 0;
  std::uint64_t inprocess_us = 0;
  /// Assumption savepoint (zero with assumption_savepoint off): solve()
  /// calls that kept a non-empty trail prefix from the previous call,
  /// calls that had to fall back to level 0, and the total decision
  /// levels the hits preserved (re-propagation avoided).
  std::uint64_t savepoint_hits = 0;
  std::uint64_t savepoint_misses = 0;
  std::uint64_t savepoint_levels_reused = 0;
  /// Frame retirement (incremental sessions): clauses deleted from the
  /// arena because a permanently false activation guard satisfies them.
  std::uint64_t retired_frame_clauses = 0;
  bool rank_switched = false;  // dynamic fallback fired (last solve call)
  double solve_time_sec = 0.0;  // accumulated across solve calls
};

}  // namespace refbmc::sat
