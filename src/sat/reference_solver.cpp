#include "sat/reference_solver.hpp"

#include <vector>

#include "util/assert.hpp"

namespace refbmc::sat {
namespace {

enum class Val : std::uint8_t { Undef, True, False };

Val lit_value(const std::vector<Val>& assign, Lit l) {
  const Val v = assign[static_cast<std::size_t>(l.var())];
  if (v == Val::Undef) return Val::Undef;
  const bool t = (v == Val::True) != l.negated();
  return t ? Val::True : Val::False;
}

/// Returns false on conflict; otherwise applies all unit implications.
bool unit_propagate(const Cnf& cnf, std::vector<Val>& assign) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& clause : cnf.clauses) {
      int free_count = 0;
      Lit free_lit = kLitUndef;
      bool satisfied = false;
      for (const Lit l : clause) {
        const Val v = lit_value(assign, l);
        if (v == Val::True) {
          satisfied = true;
          break;
        }
        if (v == Val::Undef) {
          ++free_count;
          free_lit = l;
        }
      }
      if (satisfied) continue;
      if (free_count == 0) return false;  // conflict
      if (free_count == 1) {
        assign[static_cast<std::size_t>(free_lit.var())] =
            free_lit.negated() ? Val::False : Val::True;
        changed = true;
      }
    }
  }
  return true;
}

bool dpll(const Cnf& cnf, std::vector<Val> assign) {
  if (!unit_propagate(cnf, assign)) return false;
  // Pick the first unassigned variable that still occurs in an
  // unsatisfied clause.
  for (const auto& clause : cnf.clauses) {
    bool satisfied = false;
    Lit branch = kLitUndef;
    for (const Lit l : clause) {
      const Val v = lit_value(assign, l);
      if (v == Val::True) {
        satisfied = true;
        break;
      }
      if (v == Val::Undef && branch == kLitUndef) branch = l;
    }
    if (satisfied) continue;
    REFBMC_ASSERT(branch != kLitUndef);  // conflict was excluded above
    auto with_true = assign;
    with_true[static_cast<std::size_t>(branch.var())] =
        branch.negated() ? Val::False : Val::True;
    if (dpll(cnf, std::move(with_true))) return true;
    assign[static_cast<std::size_t>(branch.var())] =
        branch.negated() ? Val::True : Val::False;
    return dpll(cnf, std::move(assign));
  }
  return true;  // every clause satisfied
}

}  // namespace

Result reference_solve(const Cnf& cnf) {
  for (const auto& clause : cnf.clauses)
    if (clause.empty()) return Result::Unsat;
  std::vector<Val> assign(static_cast<std::size_t>(cnf.num_vars), Val::Undef);
  return dpll(cnf, std::move(assign)) ? Result::Sat : Result::Unsat;
}

}  // namespace refbmc::sat
