#include "sat/trail.hpp"

#include <algorithm>

namespace refbmc::sat {

ClauseRef relocate_ref(
    ClauseRef cref,
    const std::vector<std::pair<ClauseRef, ClauseRef>>& map) {
  const auto it = std::lower_bound(
      map.begin(), map.end(), cref,
      [](const std::pair<ClauseRef, ClauseRef>& p, ClauseRef c) {
        return p.first < c;
      });
  REFBMC_ASSERT(it != map.end() && it->first == cref);
  return it->second;
}

void Trail::relocate_reasons(
    const std::vector<std::pair<ClauseRef, ClauseRef>>& map) {
  for (std::size_t v = 0; v < reason_.size(); ++v) {
    if (reason_[v] != kClauseRefUndef && assigns_[v] != l_Undef)
      reason_[v] = relocate_ref(reason_[v], map);
    else
      reason_[v] = kClauseRefUndef;
  }
}

}  // namespace refbmc::sat
