// Reference solver: a tiny, obviously-correct DPLL without learning,
// watched literals, or heuristics.  Exponential, usable only on small
// formulas — it exists purely as an oracle for property-based tests of
// the real CDCL solver.
#pragma once

#include "sat/dimacs.hpp"
#include "sat/types.hpp"

namespace refbmc::sat {

/// Decides satisfiability of `cnf` by plain recursive DPLL with unit
/// propagation.  Intended for formulas with at most ~30 variables.
Result reference_solve(const Cnf& cnf);

}  // namespace refbmc::sat
