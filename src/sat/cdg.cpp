#include "sat/cdg.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace refbmc::sat {

void ConflictDependencyGraph::register_original(ClauseId id) {
  REFBMC_ASSERT_MSG(id == kind_.size() + 1,
                    "clause ids must be registered densely in order");
  kind_.push_back(0);
  offsets_.push_back(edges_.size());
}

void ConflictDependencyGraph::add_learned(
    ClauseId id, const std::vector<ClauseId>& antecedents) {
  REFBMC_ASSERT_MSG(id == kind_.size() + 1,
                    "clause ids must be registered densely in order");
  for (const ClauseId a : antecedents) {
    REFBMC_ASSERT_MSG(a != kClauseIdUndef && a < id,
                      "antecedent must be an earlier clause");
    edges_.push_back(a);
  }
  kind_.push_back(1);
  offsets_.push_back(edges_.size());
  ++num_learned_;
}

void ConflictDependencyGraph::set_final_conflict(
    const std::vector<ClauseId>& antecedents) {
  final_ = antecedents;
  has_final_ = true;
}

std::vector<ClauseId> ConflictDependencyGraph::original_core() const {
  REFBMC_EXPECTS_MSG(has_final_, "no final conflict recorded (formula not "
                                 "proven unsatisfiable)");
  std::vector<ClauseId> core;
  std::vector<bool> seen(kind_.size() + 1, false);
  std::vector<ClauseId> work;

  const auto push = [&](ClauseId id) {
    REFBMC_ASSERT(id != kClauseIdUndef && id <= kind_.size());
    if (!seen[id]) {
      seen[id] = true;
      work.push_back(id);
    }
  };

  for (const ClauseId id : final_) push(id);

  while (!work.empty()) {
    const ClauseId id = work.back();
    work.pop_back();
    if (kind_[id - 1] == 0) {
      core.push_back(id);
      continue;
    }
    for (std::uint64_t e = offsets_[id - 1]; e < offsets_[id]; ++e)
      push(edges_[static_cast<std::size_t>(e)]);
  }

  std::sort(core.begin(), core.end());
  return core;
}

void ConflictDependencyGraph::clear() {
  kind_.clear();
  offsets_.assign(1, 0);
  edges_.clear();
  final_.clear();
  num_learned_ = 0;
  has_final_ = false;
}

}  // namespace refbmc::sat
