#include "sat/decision.hpp"

#include <vector>

namespace refbmc::sat {

std::optional<DecisionMode> parse_decision_mode(std::string_view name) {
  for (const DecisionMode m : {DecisionMode::Chaff, DecisionMode::Evsids})
    if (name == to_string(m)) return m;
  return std::nullopt;
}

bool DecisionQueue::refresh_ranks(std::span<const double> rank_by_var) {
  for (std::size_t v = 0; v < rank_by_var.size(); ++v)
    set_rank(static_cast<Var>(v), rank_by_var[v]);
  if (!rank_active()) return false;  // values kept; activity order stands
  rebuild();
  return true;
}

Lit DecisionQueue::pick_branch(const Trail& trail) {
  while (!empty()) {
    const Var v = pop();
    if (trail.value(v) != l_Undef) continue;
    const lbool saved = trail.saved_phase(v);
    if (saved != l_Undef) return Lit::make(v, saved == l_False);
    return pick_phase(v);
  }
  return kLitUndef;
}

namespace {

// ---- Chaff ---------------------------------------------------------------
//
// A thin adapter over DecisionHeuristic: every ordering decision the
// monolithic solver made is delegated unchanged, which is what keeps the
// RankMode semantics bit-for-bit across the refactor.
class ChaffQueue final : public DecisionQueue {
 public:
  ChaffQueue(RankMode rank_mode, int update_period) : h_(update_period) {
    h_.set_rank_mode(rank_mode);
  }

  void add_var() override {
    h_.add_var();
    h_.insert(static_cast<Var>(h_.num_vars() - 1));
  }
  void set_rank_mode(RankMode mode) override { h_.set_rank_mode(mode); }
  RankMode rank_mode() const override { return h_.rank_mode(); }
  void set_rank(Var v, double score) override { h_.set_rank(v, score); }
  void rebuild() override { h_.rebuild_heap(); }

  void on_original_literal(Lit l) override { h_.on_original_literal(l); }
  void on_learned_literal(Lit l) override { h_.on_learned_literal(l); }
  void on_analyzed_var(Var) override {}  // Chaff scores learned literals
  void on_conflict() override { h_.on_conflict(); }

  bool on_decision(std::uint64_t num_decisions,
                   std::uint64_t num_original_literals,
                   int switch_divisor) override {
    return h_.on_decision(num_decisions, num_original_literals,
                          switch_divisor);
  }
  void reset_switch() override { h_.reset_switch(); }
  bool rank_active() const override { return h_.rank_active(); }
  bool switched() const override { return h_.switched(); }

  void insert(Var v) override { h_.insert(v); }
  bool empty() const override { return h_.heap_empty(); }
  Var pop() override { return h_.pop(); }
  Lit pick_phase(Var v) const override { return h_.pick_phase(v); }

 private:
  DecisionHeuristic h_;
};

// ---- EVSIDS --------------------------------------------------------------
class EvsidsQueue final : public DecisionQueue {
 public:
  EvsidsQueue(RankMode rank_mode, double decay)
      : mode_(rank_mode), decay_(decay) {
    REFBMC_EXPECTS(decay > 0.0 && decay < 1.0);
  }

  void add_var() override {
    activity_.push_back(0.0);
    rank_.push_back(0.0);
    pol_.push_back(0);
    heap_.reserve_keys(static_cast<int>(activity_.size()));
    heap_.insert(static_cast<Var>(activity_.size() - 1));
  }
  void set_rank_mode(RankMode mode) override { mode_ = mode; }
  RankMode rank_mode() const override { return mode_; }
  void set_rank(Var v, double score) override {
    rank_[static_cast<std::size_t>(v)] = score;
  }
  void rebuild() override { heap_.rebuild(); }

  void on_original_literal(Lit l) override { bump_polarity(l); }
  void on_learned_literal(Lit l) override { bump_polarity(l); }
  void on_analyzed_var(Var v) override {
    auto& a = activity_[static_cast<std::size_t>(v)];
    a += inc_;
    if (a > 1e100) rescale();
    heap_.update(v);
  }
  void on_conflict() override { inc_ /= decay_; }

  bool on_decision(std::uint64_t num_decisions,
                   std::uint64_t num_original_literals,
                   int switch_divisor) override {
    if (mode_ != RankMode::Dynamic || switched_) return false;
    REFBMC_EXPECTS(switch_divisor > 0);
    if (num_decisions > num_original_literals /
                            static_cast<std::uint64_t>(switch_divisor)) {
      switched_ = true;
      heap_.rebuild();
      return true;
    }
    return false;
  }
  void reset_switch() override {
    if (switched_) {
      switched_ = false;
      heap_.rebuild();
    }
  }
  bool rank_active() const override {
    return mode_ == RankMode::Static || mode_ == RankMode::Replace ||
           (mode_ == RankMode::Dynamic && !switched_);
  }
  bool switched() const override { return switched_; }

  void insert(Var v) override {
    if (!heap_.contains(v)) heap_.insert(v);
  }
  bool empty() const override { return heap_.empty(); }
  Var pop() override { return heap_.pop(); }
  Lit pick_phase(Var v) const override {
    // Branch toward the polarity seen more often (positive wins ties),
    // mirroring the Chaff literal-score preference.
    return Lit::make(v, pol_[static_cast<std::size_t>(v)] < 0);
  }

 private:
  struct VarGreater {
    const EvsidsQueue* q;
    bool operator()(int a, int b) const { return q->var_greater(a, b); }
  };

  bool var_greater(Var a, Var b) const {
    if (rank_active()) {
      const double ra = rank_[static_cast<std::size_t>(a)];
      const double rb = rank_[static_cast<std::size_t>(b)];
      if (ra != rb) return ra > rb;
      if (mode_ == RankMode::Replace) return a < b;
    }
    const double aa = activity_[static_cast<std::size_t>(a)];
    const double ab = activity_[static_cast<std::size_t>(b)];
    if (aa != ab) return aa > ab;
    return a < b;  // deterministic total order
  }

  void bump_polarity(Lit l) { pol_[static_cast<std::size_t>(l.var())] +=
                                  l.negated() ? -1 : 1; }

  void rescale() {
    for (auto& a : activity_) a *= 1e-100;
    inc_ *= 1e-100;
    // Uniform scaling preserves the heap order; no rebuild needed.
  }

  RankMode mode_;
  double decay_;
  double inc_ = 1.0;
  bool switched_ = false;
  std::vector<double> activity_;  // per var
  std::vector<double> rank_;      // per var: bmc_score
  std::vector<int> pol_;          // per var: positive minus negative seen
  IndexedMaxHeap<VarGreater> heap_{VarGreater{this}};
};

}  // namespace

std::unique_ptr<DecisionQueue> make_decision_queue(DecisionMode mode,
                                                   RankMode rank_mode,
                                                   int vsids_update_period,
                                                   double evsids_decay) {
  switch (mode) {
    case DecisionMode::Chaff:
      return std::make_unique<ChaffQueue>(rank_mode, vsids_update_period);
    case DecisionMode::Evsids:
      return std::make_unique<EvsidsQueue>(rank_mode, evsids_decay);
  }
  REFBMC_ASSERT_MSG(false, "invalid DecisionMode value");
}

}  // namespace refbmc::sat

