// Restart-boundary inprocessing: periodic clause vivification.
//
// Vivification (clause distillation) probes a learned clause literal by
// literal at a fresh decision level: assert the negation of each kept
// literal in turn and propagate.  Three things can happen to C = (l1 …
// ln) while walking li:
//
//   * li is already true  → the prefix plus li is itself an implied
//     clause: C shrinks to it (or, if li is true at the root, C is
//     satisfied forever and is deleted outright);
//   * li is already false → li is redundant under the negated prefix:
//     drop it;
//   * propagating ~li conflicts → the prefix plus li is implied: C
//     shrinks to it.
//
// The probed clause is DETACHED first so it never propagates itself —
// that is what makes every shortened clause implied by F \ {C} and the
// replacement sound.  Runs at the same decision-level-0 seam as clause
// import and rank refresh (restart boundaries), every
// `vivify_interval` restarts, under a propagation budget so it never
// dominates search.  With track_cdg, each replacement records the
// reason-closure clause ids as antecedents, keeping unsat cores valid
// (a superset of an unsatisfiable antecedent set is unsatisfiable).
//
// The pass ends with an arena garbage-collection opportunity:
// strengthened and replaced clauses leave dead words behind, and
// waiting for the next reduceDB to reclaim them wastes cache on the
// propagation hot path.
//
// `vivify_interval = 0` (the default) disables the pass entirely and
// leaves every search trajectory bit-identical to a solver without it.
#pragma once

#include <cstdint>

namespace refbmc::sat {

struct InprocessConfig {
  /// Restarts between vivification passes; 0 disables inprocessing.
  int vivify_interval = 0;
  /// Most-recent learned clauses considered per pass.
  int vivify_max_clauses = 256;
  /// Propagations a pass may spend before stopping early.
  std::int64_t vivify_prop_budget = 20000;

  friend bool operator==(const InprocessConfig&,
                         const InprocessConfig&) = default;
};

}  // namespace refbmc::sat
