#include "sat/inprocess.hpp"

#include <algorithm>
#include <vector>

#include "obs/trace.hpp"
#include "sat/solver.hpp"
#include "util/assert.hpp"

namespace refbmc::sat {

bool Solver::inprocess_at_restart() {
  if (config_.inprocess.vivify_interval <= 0) return ok_;  // bit-identical off
  if (++restarts_since_vivify_ <
      static_cast<std::uint64_t>(config_.inprocess.vivify_interval))
    return ok_;
  restarts_since_vivify_ = 0;
  if (!ok_) return false;
  REFBMC_ASSERT(trail_.decision_level() == 0);

  const std::uint64_t t0 = obs::monotonic_now_us();
  obs::TraceSpan span(obs::EventKind::SpanVivify);
  ++stats_.vivify_rounds;

  // Snapshot the most recent learned clauses: they are the ones the
  // search is actively deriving around, hence the likeliest to shorten.
  // Locked clauses (currently a reason) and binaries are skipped.
  const auto& learned = db_.learned();
  const std::size_t want =
      static_cast<std::size_t>(config_.inprocess.vivify_max_clauses);
  std::vector<ClauseRef> candidates;
  candidates.reserve(std::min(want, learned.size()));
  for (std::size_t i = learned.size(); i-- > 0 && candidates.size() < want;)
    candidates.push_back(learned[i]);

  const std::uint64_t props_start = stats_.propagations;
  std::int64_t shortened = 0;
  std::vector<Lit> kept;
  std::vector<ClauseId> ants;

  for (const ClauseRef cref : candidates) {
    if (!ok_) break;
    if (stats_.propagations - props_start >
        static_cast<std::uint64_t>(config_.inprocess.vivify_prop_budget))
      break;
    {
      const Clause c = db_.get(cref);
      if (c.dead() || c.size() < 3) continue;
      // Re-check locked each time: a unit derived by an earlier
      // vivification in this pass may have made this clause a reason.
      if (trail_.reason(c[0].var()) == cref && trail_.value(c[0]) == l_True)
        continue;
      // Incremental sessions: skip clauses over a live activation guard.
      // The guard is unassigned at the root, so the probe would burn its
      // propagation budget deciding guard polarity and walking frames
      // the current depth never assumes.  Retired (dead) guards are root
      // facts, so their clauses simplify away normally.  No-op when no
      // guards are registered (scratch bit-identity).
      bool guarded = false;
      const Clause c2 = db_.get(cref);
      for (std::uint32_t k = 0; k < c2.size(); ++k) {
        if (is_live_guard(c2[k].var())) {
          guarded = true;
          break;
        }
      }
      if (guarded) continue;
    }

    // Detach first: the probe must not let C propagate itself, or the
    // shortened clause would be self-justified instead of implied by
    // the rest of the formula.
    prop_.detach(db_.arena(), cref);

    std::vector<Lit> lits;
    {
      const Clause c = db_.get(cref);
      lits.reserve(c.size());
      for (std::uint32_t k = 0; k < c.size(); ++k) lits.push_back(c[k]);
    }

    kept.clear();
    ants.clear();
    bool root_satisfied = false;
    for (const Lit l : lits) {
      const lbool v = trail_.value(l);
      if (v == l_True) {
        if (trail_.level(l.var()) == 0) {
          root_satisfied = true;  // satisfied forever: delete outright
        } else {
          // Implied by the negated prefix: keep the prefix plus l.
          if (config_.track_cdg) collect_reason_closure(l.var(), ants);
          kept.push_back(l);
        }
        break;
      }
      if (v == l_False) {
        // Redundant under the negated prefix (or at the root): drop.
        if (config_.track_cdg) collect_reason_closure(l.var(), ants);
        continue;
      }
      trail_.new_decision_level();
      trail_.assign(~l, kClauseRefUndef);
      const ClauseRef confl = propagate();
      if (confl != kClauseRefUndef) {
        // The negated prefix plus ~l is contradictory: prefix + l holds.
        if (config_.track_cdg) {
          const Clause cc = db_.get(confl);
          ants.push_back(cc.id());
          for (std::uint32_t k = 0; k < cc.size(); ++k)
            collect_reason_closure(cc[k].var(), ants);
        }
        kept.push_back(l);
        break;
      }
      kept.push_back(l);
    }
    backtrack(0);
    if (config_.track_cdg) clear_closure_marks();

    if (root_satisfied) {
      db_.remove_learned(cref);
      ++stats_.deleted_clauses;
      continue;
    }
    if (kept.size() == lits.size()) {
      // kept is always a subsequence of lits, so equal size means the
      // identical clause: restore it as-was.
      prop_.attach(db_.arena(), cref);
      continue;
    }

    // Replace C with the shortened clause.  Antecedent sets may be
    // supersets of the minimal derivation (closures stop at probe
    // decisions, which contribute nothing) — supersets keep cores valid.
    ++shortened;
    ++stats_.vivified_clauses;
    stats_.vivified_literals +=
        static_cast<std::uint64_t>(lits.size() - kept.size());
    if (config_.track_cdg) {
      std::sort(ants.begin(), ants.end());
      ants.erase(std::unique(ants.begin(), ants.end()), ants.end());
    }
    const ClauseId id = db_.register_learned();
    if (config_.track_cdg) cdg_.add_learned(id, ants);

    if (kept.empty()) {
      if (config_.track_cdg) cdg_.set_final_conflict({id});
      ok_ = false;
      db_.remove_learned(cref);
      break;
    }
    const std::uint32_t old_lbd = db_.get(cref).lbd();
    db_.remove_learned(cref);
    const std::uint32_t lbd =
        std::min(old_lbd, static_cast<std::uint32_t>(kept.size()));
    const bool managed = kept.size() >= 2;
    const ClauseRef ncref = db_.alloc_learned(kept, id, lbd, managed);
    if (managed) {
      prop_.attach(db_.arena(), ncref);
    } else {
      // Unit: a permanent root fact (kept out of the managed list, like
      // unit learnts from conflict analysis).
      trail_.assign(kept[0], ncref);
      const ClauseRef confl = propagate();
      if (confl != kClauseRefUndef) {
        ++stats_.conflicts;
        if (config_.track_cdg) analyze_final_conflict(confl);
        ok_ = false;
        break;
      }
    }
  }

  // Reclaim the words the replaced clauses left behind as soon as the
  // waste crosses the arena's threshold — not only inside reduceDB.
  if (ok_) db_.garbage_collect_if_needed(trail_, prop_, stats_);

  stats_.inprocess_us += obs::monotonic_now_us() - t0;
  span.set_value(shortened);
  return ok_;
}

}  // namespace refbmc::sat
