// Core SAT types: variables, literals, and the three-valued lbool.
//
// Conventions follow the MiniSat lineage: variables are dense 0-based
// integers; a literal packs a variable and a sign into one int
// (lit = 2*var + sign, sign 1 = negated), so literals index arrays
// (watch lists, scores) directly.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "util/assert.hpp"

namespace refbmc::sat {

using Var = int;
constexpr Var kVarUndef = -1;

class Lit {
 public:
  constexpr Lit() : x_(-2) {}

  static constexpr Lit make(Var v, bool negated = false) {
    Lit l;
    l.x_ = v + v + static_cast<int>(negated);
    return l;
  }

  /// Builds a literal from DIMACS convention: +v → positive literal of
  /// variable v-1, -v → negative literal.  v must be non-zero.
  static Lit from_dimacs(int dimacs) {
    REFBMC_EXPECTS(dimacs != 0);
    const Var v = (dimacs > 0 ? dimacs : -dimacs) - 1;
    return make(v, dimacs < 0);
  }

  constexpr Var var() const { return x_ >> 1; }
  constexpr bool negated() const { return (x_ & 1) != 0; }
  constexpr int index() const { return x_; }
  constexpr bool is_undef() const { return x_ < 0; }

  int to_dimacs() const { return negated() ? -(var() + 1) : (var() + 1); }

  constexpr Lit operator~() const {
    Lit l;
    l.x_ = x_ ^ 1;
    return l;
  }

  friend constexpr bool operator==(Lit a, Lit b) { return a.x_ == b.x_; }
  friend constexpr bool operator!=(Lit a, Lit b) { return a.x_ != b.x_; }
  friend constexpr bool operator<(Lit a, Lit b) { return a.x_ < b.x_; }

 private:
  int x_;
};

constexpr Lit kLitUndef{};

inline std::ostream& operator<<(std::ostream& os, Lit l) {
  if (l.is_undef()) return os << "<undef>";
  return os << l.to_dimacs();
}

/// Three-valued Boolean: True, False, or Undef (unassigned).
class lbool {
 public:
  constexpr lbool() : v_(2) {}
  explicit constexpr lbool(bool b) : v_(b ? 1 : 0) {}

  static constexpr lbool undef() { return lbool(std::uint8_t{2}); }
  static constexpr lbool true_value() { return lbool(std::uint8_t{1}); }
  static constexpr lbool false_value() { return lbool(std::uint8_t{0}); }

  constexpr bool is_true() const { return v_ == 1; }
  constexpr bool is_false() const { return v_ == 0; }
  constexpr bool is_undef() const { return v_ == 2; }

  /// Negation; Undef stays Undef.
  constexpr lbool operator~() const {
    return v_ == 2 ? *this : lbool(std::uint8_t(1 - v_));
  }

  /// XOR with a sign bit: `value ^ true` flips True/False, keeps Undef.
  constexpr lbool operator^(bool sign) const {
    return sign ? ~(*this) : *this;
  }

  friend constexpr bool operator==(lbool a, lbool b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(lbool a, lbool b) { return a.v_ != b.v_; }

 private:
  explicit constexpr lbool(std::uint8_t v) : v_(v) {}
  std::uint8_t v_;
};

constexpr lbool l_True = lbool::true_value();
constexpr lbool l_False = lbool::false_value();
constexpr lbool l_Undef = lbool::undef();

inline std::ostream& operator<<(std::ostream& os, lbool b) {
  return os << (b.is_true() ? "true" : b.is_false() ? "false" : "undef");
}

/// Result of a solver run.  Unknown is returned when a resource limit
/// (conflicts or wall clock) was exhausted.
enum class Result { Sat, Unsat, Unknown };

inline const char* to_string(Result r) {
  switch (r) {
    case Result::Sat: return "SAT";
    case Result::Unsat: return "UNSAT";
    case Result::Unknown: return "UNKNOWN";
  }
  return "?";
}

inline std::ostream& operator<<(std::ostream& os, Result r) {
  return os << to_string(r);
}

using ClauseId = std::uint32_t;
constexpr ClauseId kClauseIdUndef = 0;  // valid ids start at 1

}  // namespace refbmc::sat
