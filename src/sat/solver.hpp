// CDCL SAT solver in the Chaff/MiniSat lineage, with the additions the
// paper needs:
//
//  * Chaff-style VSIDS decision scores (periodic halve-and-add), pluggable
//    external variable ranking (static / dynamic combination, §3.3);
//  * a simplified Conflict-Dependency Graph recording, per learned clause,
//    the pseudo-IDs of its antecedents (§3.1), kept independent of the
//    clause database so reduceDB stays enabled;
//  * complete unsatisfiable-core extraction from the final conflict —
//    including refutations of assumption sets;
//  * incremental use: clauses may be added between solve() calls, and
//    solve(assumptions) supports activation-literal idioms (the
//    "incremental SAT" combination the paper's conclusion points to).
//
// Mechanics: two-watched-literal BCP, first-UIP conflict analysis with
// recursive clause minimization, Luby restarts, activity-driven learned
// clause deletion, arena garbage collection.
//
// Clause ids are dense over *all* clauses in arrival order (original and
// learned interleave under incremental use); unsat cores are reported as
// original-clause ids.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "sat/cdg.hpp"
#include "sat/clause.hpp"
#include "sat/heuristic.hpp"
#include "sat/stats.hpp"
#include "sat/types.hpp"
#include "util/timer.hpp"

namespace refbmc::sat {

struct SolverConfig {
  // VSIDS
  int vsids_update_period = 256;  // conflicts between score halvings
  // Refined ordering (paper §3.3)
  RankMode rank_mode = RankMode::None;
  int dynamic_switch_divisor = 64;  // switch when decisions > #lits / divisor
  // Restarts: Luby sequence in units of `restart_base` conflicts.
  bool enable_restarts = true;
  int restart_base = 256;
  // Learned clause deletion.
  bool enable_reduce_db = true;
  int reduce_base = 2000;       // first reduceDB after this many learned
  double reduce_grow = 1.5;     // growth factor of the limit
  double clause_decay = 0.999;  // learned clause activity decay
  // Conflict-dependency graph / core tracking (paper §3.1).  Turning this
  // off disables unsat_core() but removes the bookkeeping overhead.
  bool track_cdg = true;
  // Phase saving: re-decide variables with their last assigned polarity
  // instead of the Chaff literal-score phase.  Off by default (the paper
  // predates phase saving; keeping it off stays faithful to Chaff).
  bool phase_saving = false;
  // Resource limits per solve() call (negative = unlimited).
  std::int64_t conflict_limit = -1;
  double time_limit_sec = -1.0;
};

class Solver {
 public:
  explicit Solver(SolverConfig config = {});

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // ---- problem construction -----------------------------------------
  /// Creates a fresh variable and returns it (dense, starting at 0).
  /// May be called between solve() calls.
  Var new_var();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause over existing variables.  Every call consumes one
  /// clause id (dense, shared with learned clauses) — including
  /// tautologies and clauses already satisfied.  May be called between
  /// solve() calls.  Returns false when the solver is already in an
  /// unsatisfiable state after this clause.
  bool add_clause(const std::vector<Lit>& lits);

  /// Number of add_clause calls so far.
  std::size_t num_original_clauses() const { return original_ids_.size(); }
  /// Ids of original clauses in arrival order.
  const std::vector<ClauseId>& original_ids() const { return original_ids_; }
  /// Literal occurrences across original clauses (after dedup), the
  /// baseline for the dynamic policy's switch threshold.
  std::uint64_t num_original_literals() const { return num_orig_lits_; }

  /// The literals of original clause `id` (after duplicate removal).
  const std::vector<Lit>& original_clause(ClauseId id) const;
  bool is_original_clause(ClauseId id) const;

  // ---- refined ordering ----------------------------------------------
  /// Sets the external per-variable rank (bmc_score).  Only meaningful
  /// with rank_mode Static or Dynamic.  Missing entries default to 0.
  void set_variable_rank(std::span<const double> rank_by_var);

  /// Adjusts the per-solve resource limits (useful between incremental
  /// solve() calls; negative = unlimited).
  void set_resource_limits(std::int64_t conflict_limit,
                           double time_limit_sec) {
    config_.conflict_limit = conflict_limit;
    config_.time_limit_sec = time_limit_sec;
  }

  /// Cooperative cancellation: while `stop` is non-null and becomes true,
  /// solve() returns Result::Unknown at the next conflict / restart /
  /// decision boundary (and immediately when pre-set).  The flag is owned
  /// by the caller — typically the portfolio scheduler — and may be
  /// flipped from another thread; the solver only ever reads it.
  void set_stop_flag(const std::atomic<bool>* stop) { stop_ = stop; }
  bool stop_requested() const {
    return stop_ != nullptr && stop_->load(std::memory_order_relaxed);
  }

  // ---- solving ---------------------------------------------------------
  Result solve() { return solve({}); }
  /// Solves under the given assumption literals.  Unsat then means "the
  /// formula refutes this assumption set"; unsat_core() reports the
  /// original clauses used in that refutation.
  Result solve(const std::vector<Lit>& assumptions);

  /// Model access after Result::Sat.
  lbool model_value(Var v) const;
  bool model_literal_true(Lit l) const {
    return (model_value(l.var()) ^ l.negated()) == l_True;
  }

  /// After Result::Unsat (with track_cdg): ids of original clauses in the
  /// unsatisfiable core, sorted ascending.  When the last solve used
  /// assumptions, the core is relative to them: core ∧ assumptions ⊨ ⊥.
  std::vector<ClauseId> unsat_core() const;
  /// Variables occurring in the unsat core, sorted ascending.
  std::vector<Var> unsat_core_vars() const;
  /// The assumptions of the most recent solve() call (empty for a plain
  /// solve) — needed to certify assumption-relative cores.
  const std::vector<Lit>& last_assumptions() const {
    return last_assumptions_;
  }

  const SolverStats& stats() const { return stats_; }
  const ConflictDependencyGraph& cdg() const { return cdg_; }

  /// Current assignment value (valid during/after solve; root-level facts
  /// persist across solve calls).
  lbool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  lbool value(Lit l) const { return value(l.var()) ^ l.negated(); }

  bool okay() const { return ok_; }

 private:
  struct Watcher {
    ClauseRef cref;
    Lit blocker;  // fast satisfied check without touching the clause
  };

  // -- trail / assignment ------------------------------------------------
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }
  void enqueue(Lit l, ClauseRef reason);
  void cancel_until(int level);

  // -- BCP -----------------------------------------------------------------
  ClauseRef propagate();
  void attach_clause(ClauseRef cref);
  void detach_clause(ClauseRef cref);

  // -- conflict analysis ---------------------------------------------------
  /// 1UIP analysis; fills `learnt` (learnt[0] = asserting literal),
  /// returns the backjump level, and fills `antecedents` with the clause
  /// ids resolved on (including those consumed by minimization and by
  /// elimination of root-implied literals).
  int analyze(ClauseRef confl, std::vector<Lit>& learnt,
              std::vector<ClauseId>& antecedents);
  bool lit_redundant(Lit p, std::uint32_t abstract_levels,
                     std::vector<ClauseId>& antecedents);
  /// Conflict with no decisions involved: the empty clause is derivable.
  void analyze_final_conflict(ClauseRef confl);
  /// The assumption `p` is refuted by propagation from the formula and
  /// earlier assumptions: record the clauses used.
  void analyze_assumption_refutation(Lit p);
  /// Adds the transitive reason closure of `v` to `antecedents`, stopping
  /// at decision/assumption variables (which have no reason clause).
  void collect_reason_closure(Var v, std::vector<ClauseId>& antecedents);
  void clear_closure_marks();
  std::uint32_t abstract_level(Var v) const {
    return 1u << (static_cast<std::uint32_t>(level_[static_cast<std::size_t>(v)]) & 31u);
  }

  // -- learned clause management -------------------------------------------
  void record_learned(const std::vector<Lit>& learnt,
                      const std::vector<ClauseId>& antecedents);
  void bump_clause_activity(Clause c);
  void decay_clause_activity() { cla_inc_ /= config_.clause_decay; }
  /// Shrinks a kept learned clause in place by removing root-false tail
  /// literals (track_cdg off only; see reduce_db).
  void strengthen_learned(ClauseRef cref);
  void reduce_db();
  bool clause_locked(ClauseRef cref) const;
  void garbage_collect();
  void relocate(ClauseRef& cref,
                const std::vector<std::pair<ClauseRef, ClauseRef>>& map) const;

  // -- search ---------------------------------------------------------------
  Lit pick_branch_literal();
  static std::int64_t luby(std::int64_t i);

  SolverConfig config_;
  SolverStats stats_;

  ClauseArena arena_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()

  std::vector<lbool> assigns_;     // per var
  std::vector<int> level_;         // per var
  std::vector<ClauseRef> reason_;  // per var
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  int qhead_ = 0;

  DecisionHeuristic heuristic_;
  ConflictDependencyGraph cdg_;

  ClauseId last_id_ = 0;                     // unified id counter
  std::vector<std::vector<Lit>> lits_by_id_;  // originals only; learned empty
  std::vector<char> id_is_original_;          // per id
  std::vector<ClauseId> original_ids_;
  std::vector<ClauseRef> learned_crefs_;
  std::uint64_t num_orig_lits_ = 0;
  double cla_inc_ = 1.0;

  std::vector<Lit> assumptions_;       // active during a solve() call
  std::vector<Lit> last_assumptions_;  // assumptions of the latest solve

  std::vector<char> saved_phase_;  // 0 none, 1 true, 2 false (per var)

  // analysis scratch
  std::vector<char> seen_;
  std::vector<Lit> analyze_toclear_;
  std::vector<char> seen_closure_;  // reason-closure marks
  std::vector<Var> closure_clear_;

  std::vector<lbool> model_;
  const std::atomic<bool>* stop_ = nullptr;  // not owned; may be null
  bool ok_ = true;
  bool solved_unsat_ = false;
};

}  // namespace refbmc::sat
