// CDCL SAT solver in the Chaff/MiniSat lineage, with the additions the
// paper needs:
//
//  * Chaff-style VSIDS decision scores (periodic halve-and-add), pluggable
//    external variable ranking (static / dynamic combination, §3.3);
//  * a simplified Conflict-Dependency Graph recording, per learned clause,
//    the pseudo-IDs of its antecedents (§3.1), kept independent of the
//    clause database so reduceDB stays enabled;
//  * complete unsatisfiable-core extraction from the final conflict —
//    including refutations of assumption sets;
//  * incremental use: clauses may be added between solve() calls, and
//    solve(assumptions) supports activation-literal idioms (the
//    "incremental SAT" combination the paper's conclusion points to).
//
// The solver is an orchestrator over four explicit layers:
//
//   Trail         — assignments, levels, reasons, the propagation queue
//                   (trail.hpp);
//   Propagator    — two-watched-literal BCP with blocking literals and
//                   inlined binary watch lists (propagator.hpp);
//   DecisionQueue — pluggable decision ordering: Chaff VSIDS with the
//                   refined-ordering rank feed, or EVSIDS (decision.hpp);
//   ClauseDB      — arena, clause-id space, LBD-tiered learned-clause
//                   deletion with glue protection (clausedb.hpp).
//
// What remains here: first-UIP conflict analysis with recursive clause
// minimization, Luby restarts, assumption handling, CDG/core plumbing,
// and the search loop that ties the layers together.
//
// Clause ids are dense over *all* clauses in arrival order (original and
// learned interleave under incremental use); unsat cores are reported as
// original-clause ids.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sat/cdg.hpp"
#include "sat/clause.hpp"
#include "sat/clausedb.hpp"
#include "sat/decision.hpp"
#include "sat/heuristic.hpp"
#include "sat/inprocess.hpp"
#include "sat/propagator.hpp"
#include "sat/stats.hpp"
#include "sat/trail.hpp"
#include "sat/types.hpp"
#include "util/timer.hpp"

namespace refbmc::sat {

/// Lemma-exchange seam for portfolio solving (implemented by
/// portfolio::PoolEndpoint; the solver stays ignorant of threads and of
/// the shared variable space).
///
/// Contract: export_clause is called from the search loop for every
/// learned clause passing the export filter (lbd <= share_lbd or size <=
/// share_size), with solver-space literals, learnt[0] = asserting
/// literal; it returns whether the exchange accepted the clause (the
/// solver's clauses_exported counts acceptances, so every layer's
/// "exported" number means the same thing).  import_clauses is called
/// only at decision level 0 (solve
/// start and restarts); the implementation hands foreign clauses to the
/// sink in solver-space literals.  Imported clauses MUST be implied by
/// the clause database the solvers share (the formula tape) — the
/// endpoint's variable translation enforces this by refusing clauses
/// over unshared variables.  has_pending() must be cheap (one relaxed
/// atomic load): it gates every import point.
class ClauseExchange {
 public:
  class ImportSink {
   public:
    virtual void add(std::span<const Lit> lits, std::uint32_t lbd) = 0;

   protected:
    ~ImportSink() = default;
  };

  virtual ~ClauseExchange() = default;
  /// Returns true when the clause was accepted (published).
  virtual bool export_clause(std::span<const Lit> lits, std::uint32_t lbd) = 0;
  virtual bool has_pending() const = 0;
  virtual void import_clauses(ImportSink& sink) = 0;
};

/// Mid-solve rank-refresh seam for the portfolio's shared decision
/// ordering (implemented by bmc::RankProjector; the solver stays
/// ignorant of threads, origin maps and the model-node score space).
///
/// Contract: has_update() must be cheap (one atomic epoch compare) — it
/// gates every poll point.  The solver polls at decision level 0 only
/// (solve start and restarts; the same boundaries as clause import) and,
/// when an update is pending, calls refresh() and hands the returned
/// ranks to DecisionQueue::refresh_ranks — installing the new scores and
/// rebuilding the heap only if the rank currently participates in the
/// order.  A refresh never touches the dynamic-fallback switch: a queue
/// that already fell back to activity order stays fallen back until the
/// next solve() re-arms it.  The returned span must stay valid until the
/// next refresh() call and hold at most num_vars() entries.
class RankRefresh {
 public:
  virtual ~RankRefresh() = default;
  virtual bool has_update() const = 0;
  virtual std::span<const double> refresh() = 0;
};

struct SolverConfig {
  // Decision ordering implementation (see decision.hpp).
  DecisionMode decision = DecisionMode::Chaff;
  // VSIDS (Chaff scorer)
  int vsids_update_period = 256;  // conflicts between score halvings
  // EVSIDS scorer: per-conflict activity inflation factor.
  double evsids_decay = 0.95;
  // Refined ordering (paper §3.3)
  RankMode rank_mode = RankMode::None;
  int dynamic_switch_divisor = 64;  // switch when decisions > #lits / divisor
  // Restarts: Luby sequence in units of `restart_base` conflicts.
  bool enable_restarts = true;
  int restart_base = 256;
  // Learned clause deletion (LBD tiers; see clausedb.hpp).
  bool enable_reduce_db = true;
  int reduce_base = 2000;       // first reduceDB after this many learned
  double reduce_grow = 1.5;     // growth factor of the limit
  double clause_decay = 0.999;  // learned clause activity decay
  int glue_lbd = 2;             // LBD at or below: never deleted
  int tier_lbd = 6;             // LBD at or below: deleted after local tier
  // Lemma sharing export filter (consulted only with a ClauseExchange
  // attached): a learned clause is exported when lbd <= share_lbd OR
  // size <= share_size.
  int share_lbd = 4;
  int share_size = 2;
  // Restart-boundary inprocessing (clause vivification; see
  // inprocess.hpp).  vivify_interval 0 (the default) disables it and
  // keeps every search trajectory bit-identical to a solver without it.
  InprocessConfig inprocess;
  // Conflict-dependency graph / core tracking (paper §3.1).  Turning this
  // off disables unsat_core() but removes the bookkeeping overhead.
  bool track_cdg = true;
  // Phase saving: re-decide variables with their last assigned polarity
  // instead of the Chaff literal-score phase.  Off by default (the paper
  // predates phase saving; keeping it off stays faithful to Chaff).
  bool phase_saving = false;
  // Assumption savepoint (incremental sessions): when successive solve()
  // calls share an assumption prefix, keep that prefix's trail levels
  // alive instead of backtracking to level 0 — solve start and restarts
  // return only to the longest common prefix still on the trail, and
  // clauses added between calls attach at the current level when their
  // watch invariants allow it.  Off (the default) is bit-identical to a
  // solver without the feature.
  bool assumption_savepoint = false;
  // Resource limits per solve() call (negative = unlimited).
  std::int64_t conflict_limit = -1;
  double time_limit_sec = -1.0;
  // Formula-state memory accounting (may be shared race-wide; not
  // owned).  The arena and the watcher lists charge their heap here,
  // and solve() returns Result::Unknown at the next conflict/decision
  // checkpoint once the tracker reports a ceiling breach.
  MemTracker* mem_tracker = nullptr;
};

class Solver {
 public:
  explicit Solver(SolverConfig config = {});

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // ---- problem construction -----------------------------------------
  /// Creates a fresh variable and returns it (dense, starting at 0).
  /// May be called between solve() calls.
  Var new_var();
  int num_vars() const { return trail_.num_vars(); }

  /// Adds a clause over existing variables.  Every call consumes one
  /// clause id (dense, shared with learned clauses) — including
  /// tautologies and clauses already satisfied.  May be called between
  /// solve() calls.  Returns false when the solver is already in an
  /// unsatisfiable state after this clause.
  bool add_clause(const std::vector<Lit>& lits);

  /// Number of add_clause calls so far.
  std::size_t num_original_clauses() const {
    return db_.num_original_clauses();
  }
  /// Ids of original clauses in arrival order.
  const std::vector<ClauseId>& original_ids() const {
    return db_.original_ids();
  }
  /// Literal occurrences across original clauses (after dedup), the
  /// baseline for the dynamic policy's switch threshold.
  std::uint64_t num_original_literals() const {
    return db_.num_original_literals();
  }

  /// The literals of original clause `id` (after duplicate removal).
  const std::vector<Lit>& original_clause(ClauseId id) const {
    return db_.original_clause(id);
  }
  bool is_original_clause(ClauseId id) const {
    return db_.is_original_clause(id);
  }

  // ---- refined ordering ----------------------------------------------
  /// Sets the external per-variable rank (bmc_score).  Only meaningful
  /// with rank_mode Static or Dynamic.  Missing entries default to 0.
  void set_variable_rank(std::span<const double> rank_by_var);

  /// Adjusts the per-solve resource limits (useful between incremental
  /// solve() calls; negative = unlimited).
  void set_resource_limits(std::int64_t conflict_limit,
                           double time_limit_sec) {
    config_.conflict_limit = conflict_limit;
    config_.time_limit_sec = time_limit_sec;
  }

  /// Cooperative cancellation: while `stop` is non-null and becomes true,
  /// solve() returns Result::Unknown at the next conflict / restart /
  /// decision boundary (and immediately when pre-set).  The flag is owned
  /// by the caller — typically the portfolio scheduler — and may be
  /// flipped from another thread; the solver only ever reads it.
  void set_stop_flag(const std::atomic<bool>* stop) { stop_ = stop; }
  bool stop_requested() const {
    return stop_ != nullptr && stop_->load(std::memory_order_relaxed);
  }

  /// Attaches a lemma-exchange endpoint (portfolio clause sharing).  The
  /// exchange is owned by the caller and must outlive every solve();
  /// null (the default) disables sharing and leaves every search
  /// trajectory bit-identical to a solver without the hook.
  void set_clause_exchange(ClauseExchange* exchange) { exchange_ = exchange; }

  /// Attaches a mid-solve rank-refresh hook (portfolio shared ordering).
  /// Owned by the caller, must outlive every solve(); null (the default)
  /// keeps the rank feed prepare-time-only — set_variable_rank before
  /// solve() — and every search trajectory bit-identical to a solver
  /// without the hook.
  void set_rank_refresh(RankRefresh* refresh) { rank_refresh_ = refresh; }

  // ---- incremental frame guards ---------------------------------------
  /// Declares `v` a frame activation guard (incremental sessions).  Live
  /// guards shield their clauses from vivification probing; retired ones
  /// drive the retirement sweep.
  void register_frame_guard(Var v);
  /// Permanently falsifies a batch of activation guards: backtracks to
  /// the root, adds the unit ~g for each, then sweeps every clause a
  /// dead guard satisfies out of the arena (stats_.retired_frame_clauses)
  /// and compacts if worthwhile.  Returns ok_.
  bool retire_frame_guards(const std::vector<Lit>& guards);

  // ---- solving ---------------------------------------------------------
  Result solve() { return solve({}); }
  /// Solves under the given assumption literals.  Unsat then means "the
  /// formula refutes this assumption set"; unsat_core() reports the
  /// original clauses used in that refutation.
  Result solve(const std::vector<Lit>& assumptions);

  /// Model access after Result::Sat.
  lbool model_value(Var v) const;
  bool model_literal_true(Lit l) const {
    return (model_value(l.var()) ^ l.negated()) == l_True;
  }

  /// After Result::Unsat (with track_cdg): ids of original clauses in the
  /// unsatisfiable core, sorted ascending.  When the last solve used
  /// assumptions, the core is relative to them: core ∧ assumptions ⊨ ⊥.
  std::vector<ClauseId> unsat_core() const;
  /// Variables occurring in the unsat core, sorted ascending.
  std::vector<Var> unsat_core_vars() const;
  /// The assumptions of the most recent solve() call (empty for a plain
  /// solve) — needed to certify assumption-relative cores.
  const std::vector<Lit>& last_assumptions() const {
    return last_assumptions_;
  }

  const SolverStats& stats() const { return stats_; }
  const ConflictDependencyGraph& cdg() const { return cdg_; }

  /// Current assignment value (valid during/after solve; root-level facts
  /// persist across solve calls).
  lbool value(Var v) const { return trail_.value(v); }
  lbool value(Lit l) const { return trail_.value(l); }

  bool okay() const { return ok_; }

  /// The solver's layers, inspectable (tests, stats surfacing).
  const Trail& trail() const { return trail_; }
  const Propagator& propagator() const { return prop_; }
  const ClauseDB& clause_db() const { return db_; }
  const DecisionQueue& decision_queue() const { return *queue_; }

 private:
  // -- BCP (delegated to the Propagator) -----------------------------------
  ClauseRef propagate() { return prop_.propagate(trail_, db_.arena(), stats_); }

  // -- conflict analysis ---------------------------------------------------
  /// 1UIP analysis; fills `learnt` (learnt[0] = asserting literal),
  /// returns the backjump level, and fills `antecedents` with the clause
  /// ids resolved on (including those consumed by minimization and by
  /// elimination of root-implied literals).
  int analyze(ClauseRef confl, std::vector<Lit>& learnt,
              std::vector<ClauseId>& antecedents);
  bool lit_redundant(Lit p, std::uint32_t abstract_levels,
                     std::vector<ClauseId>& antecedents);
  /// Conflict with no decisions involved: the empty clause is derivable.
  void analyze_final_conflict(ClauseRef confl);
  /// The assumption `p` is refuted by propagation from the formula and
  /// earlier assumptions: record the clauses used.
  void analyze_assumption_refutation(Lit p);
  /// Adds the transitive reason closure of `v` to `antecedents`, stopping
  /// at decision/assumption variables (which have no reason clause).
  void collect_reason_closure(Var v, std::vector<ClauseId>& antecedents);
  void clear_closure_marks();
  /// Fetches the reason clause of trail literal `p`, normalized so the
  /// asserted literal sits at position 0 (binary propagation assigns
  /// without touching the arena, so its reasons may arrive swapped).
  Clause reason_clause(Lit p);

  // -- learned clause management (policy in the ClauseDB) -------------------
  void record_learned(const std::vector<Lit>& learnt, std::uint32_t lbd,
                      const std::vector<ClauseId>& antecedents);

  // -- lemma sharing --------------------------------------------------------
  /// Drains the attached exchange at decision level 0 and propagates the
  /// consequences.  Returns ok_: false means a foreign clause (or its
  /// propagation) produced a root conflict and the formula is unsat.
  bool import_shared_clauses();
  /// Integrates one foreign clause: root-simplifies it, then attaches it
  /// as a learned-tier clause (or asserts it when it reduces to a unit).
  void import_clause(std::span<const Lit> lits, std::uint32_t lbd);

  // -- inprocessing ---------------------------------------------------------
  /// Runs the periodic vivification pass when its restart interval is
  /// due (defined in inprocess.cpp).  Called at the restart level-0
  /// seam, after clause import and rank refresh.  Returns ok_: false
  /// means inprocessing derived the empty clause (formula unsat).
  bool inprocess_at_restart();
  /// Whether the NEXT restart's vivification pass would run — partial
  /// (savepoint) restarts consult this to decide if they must fall back
  /// to a full level-0 restart, keeping the vivify cadence intact.
  bool inprocess_due() const {
    return config_.inprocess.vivify_interval > 0 &&
           restarts_since_vivify_ + 1 >=
               static_cast<std::uint64_t>(config_.inprocess.vivify_interval);
  }
  /// True when `v` is a live (unretired) activation guard — vivification
  /// skips clauses mentioning one (their truth is frame-conditional).
  bool is_live_guard(Var v) const {
    return static_cast<std::size_t>(v) < guard_state_.size() &&
           guard_state_[static_cast<std::size_t>(v)] == 1;
  }

  // -- shared-ordering refresh ----------------------------------------------
  /// Polls the attached RankRefresh at decision level 0 (solve start and
  /// restarts) and re-feeds the decision queue when the shared
  /// accumulation advanced since this solver's last projection.
  void poll_rank_refresh();

  // -- search ---------------------------------------------------------------
  void backtrack(int level);
  static std::int64_t luby(std::int64_t i);

  SolverConfig config_;
  SolverStats stats_;

  Trail trail_;
  Propagator prop_;
  ClauseDB db_;
  std::unique_ptr<DecisionQueue> queue_;
  ConflictDependencyGraph cdg_;

  std::vector<Lit> assumptions_;       // active during a solve() call
  std::vector<Lit> last_assumptions_;  // assumptions of the latest solve

  // analysis scratch
  std::vector<char> seen_;
  std::vector<Lit> analyze_toclear_;
  std::vector<char> seen_closure_;  // reason-closure marks
  std::vector<Var> closure_clear_;

  std::vector<lbool> model_;
  std::vector<Lit> import_buf_;              // import root-simplify scratch
  const std::atomic<bool>* stop_ = nullptr;  // not owned; may be null
  ClauseExchange* exchange_ = nullptr;       // not owned; may be null
  RankRefresh* rank_refresh_ = nullptr;      // not owned; may be null
  bool ok_ = true;
  bool solved_unsat_ = false;
  std::uint64_t restarts_since_vivify_ = 0;
  // Assumption savepoint: the assumption list whose decision levels were
  // kept on the trail by the previous solve()'s finish (levels 1..m map
  // to entries 0..m-1, placeholders included), and how many were kept.
  std::vector<Lit> savepoint_assumptions_;
  int savepoint_levels_ = 0;
  // Per-variable frame-guard state: 0 = not a guard, 1 = live, 2 = dead.
  std::vector<char> guard_state_;
  /// Whether the decision queue wants per-variable analysis bumps (the
  /// EVSIDS scorer); cached to keep the no-op virtual hop out of the
  /// analyze loop for Chaff.
  bool bump_analyzed_ = false;
};

}  // namespace refbmc::sat
