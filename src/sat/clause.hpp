// Clause storage: a chunked, relocatable arena of 32-bit words.
//
// Clauses are referenced by ClauseRef, never by pointer.  The arena is a
// list of fixed-size chunks (64 Ki words = 256 KiB); a reference packs
// the chunk index into the high bits and the word offset into the low 16:
//
//   ClauseRef = chunk << 16 | offset        (chunk < 2^15, so refs stay
//                                            below the propagator's
//                                            kBinaryTag bit — an 8 GiB
//                                            arena ceiling)
//
// Growing the arena appends (or reuses) a chunk and never touches the
// existing ones, so live clauses are NEVER relocated by allocation — only
// garbage_collect moves them, and it compacts in place chunk-by-chunk
// (write cursor trails the read cursor, no full-arena scratch copy).
// Freed-out chunks return their memory and go to a free list for reuse.
// A clause larger than one chunk gets a dedicated exact-size chunk of its
// own; such clauses are never moved by collection either.
//
// Layout per clause (unchanged since PR 3 — a 5th header word cost ~15%
// of BCP throughput, so the header stays at four words):
//
//   [ id ] [ size<<9 | lbd<<2 | learnt<<1 | dead ] [ activity(float) ]
//   [ capacity ] [ lits... (capacity slots, first `size` live) ]
//
// `lbd` is the literal-block distance (number of distinct decision levels
// in the clause at learn time, lowered when re-derived): the tier key of
// the ClauseDB's learned-clause deletion.  0 for original clauses.  It is
// packed into seven spare bits of the flags word — saturating at 127,
// far above any deletion-tier boundary.  Sizes are bounded by 2^23
// literals per clause.
//
// `capacity` is the allocation size; in-place shrinking (tail-literal
// removal after clause minimization) lowers `size` below it, credits the
// dropped words to the arena's waste accounting, and the compaction walk
// still advances by capacity so the arena never loses its framing.
//
// The id is the pseudo-ID from the paper's simplified conflict-dependency
// graph (§3.1): it survives clause deletion, which is the whole point.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "sat/types.hpp"
#include "util/assert.hpp"
#include "util/mem_tracker.hpp"

namespace refbmc::sat {

using ClauseRef = std::uint32_t;
constexpr ClauseRef kClauseRefUndef = UINT32_MAX;

/// View over a clause stored in a ClauseArena.  Invalidated by
/// ClauseArena::garbage_collect (re-fetch through the relocation map).
class Clause {
 public:
  Clause(std::uint32_t* base) : base_(base) {}

  ClauseId id() const { return base_[0]; }
  std::uint32_t size() const { return base_[1] >> 9; }
  bool learnt() const { return (base_[1] & 2u) != 0; }
  bool dead() const { return (base_[1] & 1u) != 0; }
  void mark_dead() { base_[1] |= 1u; }

  float activity() const {
    float a;
    std::memcpy(&a, &base_[2], sizeof(float));
    return a;
  }
  void set_activity(float a) { std::memcpy(&base_[2], &a, sizeof(float)); }

  /// Literal-block distance at learn time (lowered when the clause is
  /// re-derived with fewer levels), saturated at kMaxLbd; 0 for original
  /// clauses.
  std::uint32_t lbd() const { return (base_[1] >> 2) & kMaxLbd; }
  void set_lbd(std::uint32_t lbd) {
    if (lbd > kMaxLbd) lbd = kMaxLbd;
    base_[1] = (base_[1] & ~(kMaxLbd << 2)) | (lbd << 2);
  }

  /// Allocation size: >= size(); the gap is waste reclaimed at the next
  /// garbage_collect.
  std::uint32_t capacity() const { return base_[3]; }

  Lit operator[](std::uint32_t i) const {
    return lit_from_raw(base_[4 + i]);
  }
  void set_lit(std::uint32_t i, Lit l) {
    base_[4 + i] = static_cast<std::uint32_t>(l.index());
  }
  void swap_lits(std::uint32_t i, std::uint32_t j) {
    std::swap(base_[4 + i], base_[4 + j]);
  }

  static Lit lit_from_raw(std::uint32_t raw) {
    return Lit::make(static_cast<Var>(raw >> 1), (raw & 1u) != 0);
  }

  static constexpr std::uint32_t kHeaderWords = 4;
  static constexpr std::uint32_t kMaxLbd = 0x7f;

 private:
  friend class ClauseArena;  // size/capacity bookkeeping stays in the arena

  void set_size(std::uint32_t n) { base_[1] = (n << 9) | (base_[1] & 0x1ffu); }
  void set_capacity(std::uint32_t n) { base_[3] = n; }

  std::uint32_t* base_;
};

/// Chunked bump allocator for clauses with mark-and-compact garbage
/// collection.  Growth never relocates live clauses; only
/// garbage_collect() does, reporting every move through the relocation
/// map.
class ClauseArena {
 public:
  /// chunk-index / word-offset split of a ClauseRef.
  static constexpr std::uint32_t kChunkBits = 16;
  static constexpr std::uint32_t kChunkWords = 1u << kChunkBits;  // 256 KiB
  static constexpr std::uint32_t kOffsetMask = kChunkWords - 1;
  /// Chunk indices stay below 2^15 so every ClauseRef stays below the
  /// propagator's binary-watcher tag bit (2^31).
  static constexpr std::uint32_t kMaxChunks = 1u << 15;

  ClauseArena() = default;
  ~ClauseArena() {
    if (mem_ != nullptr) mem_->sub(allocated_bytes_);
  }

  /// Every chunk allocation / release is charged here (may be null).
  /// Bytes already held move to the new tracker.
  void set_mem_tracker(MemTracker* tracker) {
    if (mem_ != nullptr) mem_->sub(allocated_bytes_);
    mem_ = tracker;
    if (mem_ != nullptr) mem_->add(allocated_bytes_);
  }

  /// Allocates a clause; returns its reference.  Never moves existing
  /// clauses.
  ClauseRef alloc(const std::vector<Lit>& lits, ClauseId id, bool learnt);

  Clause get(ClauseRef cref) {
    return Clause(word_ptr(cref));
  }
  const Clause get(ClauseRef cref) const {
    return Clause(const_cast<ClauseArena*>(this)->word_ptr(cref));
  }

  /// Marks a clause dead and accounts for its space.  The words remain
  /// until garbage_collect().
  void free_clause(ClauseRef cref);

  /// Shrinks a clause in place to its first `n` literals, crediting the
  /// dropped tail words to the waste accounting so should_collect() sees
  /// the space clause minimization frees.  The tail is reclaimed at the
  /// next garbage_collect().
  void shrink_clause(ClauseRef cref, std::uint32_t n);

  std::size_t wasted_words() const { return wasted_; }
  /// Words occupied by clause allocations (live + dead, excluding chunk
  /// tail slack).
  std::size_t used_words() const { return used_; }
  /// Bytes actually held from the allocator (whole chunks, including
  /// free-list chunks' headers — their buffers are released).
  std::size_t allocated_bytes() const { return allocated_bytes_; }

  /// True when enough space is dead that compaction is worthwhile.
  bool should_collect() const {
    return wasted_ > 0 && wasted_ * 5 > used_;  // >20% dead
  }

  /// Compacts live clauses in place, chunk by chunk.  Fills `relocation`
  /// with old→new references (sorted by old reference) for every live
  /// clause so the solver can patch watches/reasons.  Chunks emptied by
  /// the compaction release their memory to the free list.
  void garbage_collect(std::vector<std::pair<ClauseRef, ClauseRef>>& relocation);

  /// Calls fn(cref, clause) for every live clause, in arena order (the
  /// same walk as garbage_collect).  fn must not allocate arena clauses
  /// (the walk caches framing); freeing the visited clause mid-walk is
  /// safe (free_clause mutates in place).
  template <typename Fn>
  void for_each_live(Fn&& fn) {
    for (std::size_t ci = 0; ci < chunks_.size(); ++ci) {
      Chunk& ch = chunks_[ci];
      std::uint32_t at = 0;
      while (at < ch.used) {
        const auto cref =
            static_cast<ClauseRef>((ci << kChunkBits) | at);
        Clause c(ch.words.data() + at);
        at += Clause::kHeaderWords + c.capacity();
        if (!c.dead()) fn(cref, c);
      }
    }
  }

 private:
  struct Chunk {
    std::vector<std::uint32_t> words;  // heap buffer: stable across growth
    std::uint32_t used = 0;            // bump cursor / end of allocations
  };

  std::uint32_t* word_ptr(ClauseRef cref) {
    const std::size_t chunk = cref >> kChunkBits;
    REFBMC_ASSERT(chunk < chunks_.size());
    REFBMC_ASSERT((cref & kOffsetMask) < chunks_[chunk].used);
    return chunks_[chunk].words.data() + (cref & kOffsetMask);
  }

  /// Opens a chunk of `words` capacity (normal chunks: kChunkWords;
  /// oversize clauses: their exact footprint) and returns its index.
  std::uint32_t open_chunk(std::size_t words);
  void release_chunk(std::uint32_t index);
  void charge(std::size_t bytes);
  void credit(std::size_t bytes);

  std::vector<Chunk> chunks_;
  std::vector<std::uint32_t> free_chunks_;  // released, reusable indices
  std::uint32_t active_ = 0;   // bump-allocation chunk (when any exist)
  std::size_t used_ = 0;       // sum of chunk.used
  std::size_t wasted_ = 0;
  std::size_t allocated_bytes_ = 0;
  MemTracker* mem_ = nullptr;
};

}  // namespace refbmc::sat
