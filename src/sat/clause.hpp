// Clause storage: a relocatable arena of 32-bit words.
//
// Clauses are referenced by ClauseRef (an offset into the arena), never by
// pointer, so the arena can be garbage-collected when clause deletion has
// left enough dead space.  Layout per clause:
//
//   [ id ] [ size<<9 | lbd<<2 | learnt<<1 | dead ] [ activity(float) ]
//   [ capacity ] [ lits... (capacity slots, first `size` live) ]
//
// `lbd` is the literal-block distance (number of distinct decision levels
// in the clause at learn time, lowered when re-derived): the tier key of
// the ClauseDB's learned-clause deletion.  0 for original clauses.  It is
// packed into seven spare bits of the flags word — saturating at 127,
// far above any deletion-tier boundary — so the header stays at four
// words and BCP cache density is untouched.  Sizes are bounded by 2^23
// literals per clause.
//
// `capacity` is the allocation size; in-place shrinking (tail-literal
// removal after clause minimization) lowers `size` below it, credits the
// dropped words to the arena's waste accounting, and the compaction walk
// still advances by capacity so the arena never loses its framing.
//
// The id is the pseudo-ID from the paper's simplified conflict-dependency
// graph (§3.1): it survives clause deletion, which is the whole point.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "sat/types.hpp"
#include "util/assert.hpp"

namespace refbmc::sat {

using ClauseRef = std::uint32_t;
constexpr ClauseRef kClauseRefUndef = UINT32_MAX;

/// View over a clause stored in a ClauseArena.  Invalidated by
/// ClauseArena::garbage_collect (re-fetch through the relocation map).
class Clause {
 public:
  Clause(std::uint32_t* base) : base_(base) {}

  ClauseId id() const { return base_[0]; }
  std::uint32_t size() const { return base_[1] >> 9; }
  bool learnt() const { return (base_[1] & 2u) != 0; }
  bool dead() const { return (base_[1] & 1u) != 0; }
  void mark_dead() { base_[1] |= 1u; }

  float activity() const {
    float a;
    std::memcpy(&a, &base_[2], sizeof(float));
    return a;
  }
  void set_activity(float a) { std::memcpy(&base_[2], &a, sizeof(float)); }

  /// Literal-block distance at learn time (lowered when the clause is
  /// re-derived with fewer levels), saturated at kMaxLbd; 0 for original
  /// clauses.
  std::uint32_t lbd() const { return (base_[1] >> 2) & kMaxLbd; }
  void set_lbd(std::uint32_t lbd) {
    if (lbd > kMaxLbd) lbd = kMaxLbd;
    base_[1] = (base_[1] & ~(kMaxLbd << 2)) | (lbd << 2);
  }

  /// Allocation size: >= size(); the gap is waste reclaimed at the next
  /// garbage_collect.
  std::uint32_t capacity() const { return base_[3]; }

  Lit operator[](std::uint32_t i) const {
    return lit_from_raw(base_[4 + i]);
  }
  void set_lit(std::uint32_t i, Lit l) {
    base_[4 + i] = static_cast<std::uint32_t>(l.index());
  }
  void swap_lits(std::uint32_t i, std::uint32_t j) {
    std::swap(base_[4 + i], base_[4 + j]);
  }

  static Lit lit_from_raw(std::uint32_t raw) {
    return Lit::make(static_cast<Var>(raw >> 1), (raw & 1u) != 0);
  }

  static constexpr std::uint32_t kHeaderWords = 4;
  static constexpr std::uint32_t kMaxLbd = 0x7f;

 private:
  friend class ClauseArena;  // size/capacity bookkeeping stays in the arena

  void set_size(std::uint32_t n) { base_[1] = (n << 9) | (base_[1] & 0x1ffu); }
  void set_capacity(std::uint32_t n) { base_[3] = n; }

  std::uint32_t* base_;
};

/// Bump allocator for clauses with mark-and-compact garbage collection.
class ClauseArena {
 public:
  ClauseArena() = default;

  /// Allocates a clause; returns its reference.
  ClauseRef alloc(const std::vector<Lit>& lits, ClauseId id, bool learnt);

  Clause get(ClauseRef cref) {
    REFBMC_ASSERT(cref < data_.size());
    return Clause(data_.data() + cref);
  }
  const Clause get(ClauseRef cref) const {
    REFBMC_ASSERT(cref < data_.size());
    return Clause(const_cast<std::uint32_t*>(data_.data()) + cref);
  }

  /// Marks a clause dead and accounts for its space.  The words remain
  /// until garbage_collect().
  void free_clause(ClauseRef cref);

  /// Shrinks a clause in place to its first `n` literals, crediting the
  /// dropped tail words to the waste accounting so should_collect() sees
  /// the space clause minimization frees.  The tail is reclaimed at the
  /// next garbage_collect().
  void shrink_clause(ClauseRef cref, std::uint32_t n);

  std::size_t wasted_words() const { return wasted_; }
  std::size_t used_words() const { return data_.size(); }

  /// True when enough space is dead that compaction is worthwhile.
  bool should_collect() const {
    return wasted_ > 0 && wasted_ * 5 > data_.size();  // >20% dead
  }

  /// Compacts live clauses.  Fills `relocation` with old→new references for
  /// every live clause so the solver can patch watches/reasons.
  void garbage_collect(std::vector<std::pair<ClauseRef, ClauseRef>>& relocation);

  /// Calls fn(cref, clause) for every live clause, in arena order (the
  /// same walk as garbage_collect).  fn must not allocate arena clauses
  /// (the walk caches framing); freeing the visited clause mid-walk is
  /// safe (free_clause mutates in place).
  template <typename Fn>
  void for_each_live(Fn&& fn) {
    std::size_t at = 0;
    while (at < data_.size()) {
      const auto cref = static_cast<ClauseRef>(at);
      Clause c = get(cref);
      at += Clause::kHeaderWords + c.capacity();
      if (!c.dead()) fn(cref, c);
    }
  }

 private:
  std::vector<std::uint32_t> data_;
  std::size_t wasted_ = 0;
};

}  // namespace refbmc::sat
