// Propagator: two-watched-literal BCP with a fast hot path.
//
// One watcher list per literal; every entry carries a cached literal so
// the common cases never touch the ClauseArena:
//
//   * binary clauses are inlined into their watcher entry — the cached
//     literal IS the rest of the clause (tagged via the high bit of the
//     clause reference).  Propagating a binary clause reads nothing but
//     the watcher: no arena access at all, ever.
//   * long clauses (size >= 3) cache a blocking literal — when it is
//     already true the whole watcher visit is a single vector read,
//     again without touching the arena.
//
// Only when a long clause's blocker is not satisfied does the propagator
// fetch the clause and run the classic watch-replacement walk.  Keeping
// binaries in the same list (rather than a separate structure) means one
// contiguous traversal per propagated literal — no second cache-miss
// chain.  The per-path counters (binary_propagations, blocker_skips)
// feed SolverStats / DepthStats so the hot-path hit rate is observable.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sat/clause.hpp"
#include "sat/stats.hpp"
#include "sat/trail.hpp"
#include "sat/types.hpp"

namespace refbmc::sat {

class Propagator {
 public:
  Propagator() = default;
  ~Propagator() {
    if (mem_ != nullptr) mem_->sub(charged_);
  }
  Propagator(const Propagator&) = delete;
  Propagator& operator=(const Propagator&) = delete;

  /// Watcher-list heap growth is charged here (may be null); bytes
  /// already held move to the new tracker.
  void set_mem_tracker(MemTracker* tracker) {
    if (mem_ != nullptr) mem_->sub(charged_);
    mem_ = tracker;
    if (mem_ != nullptr) mem_->add(charged_);
  }

  void new_var() {
    const std::size_t before = watches_.capacity();
    watches_.emplace_back();
    watches_.emplace_back();
    if (watches_.capacity() != before)
      charge((watches_.capacity() - before) * sizeof(std::vector<Watcher>));
  }

  /// Starts watching `cref` (size >= 2); binary clauses become inlined
  /// watcher entries, longer ones watch lits 0 and 1 with a blocker.
  void attach(ClauseArena& arena, ClauseRef cref);
  /// Stops watching `cref` (inverse of attach).
  void detach(ClauseArena& arena, ClauseRef cref);

  /// A watched clause was shrunk in place (tail literals removed).  When
  /// it shrank to exactly two literals, its watchers are re-tagged as
  /// inlined binaries so later propagations take the arena-free path.
  void on_clause_shrunk(ClauseArena& arena, ClauseRef cref);

  /// Propagates every queued literal of `trail` to fixpoint.  Returns the
  /// conflicting clause, or kClauseRefUndef.  Assignments found are
  /// appended to the trail (and thus to the queue).
  ClauseRef propagate(Trail& trail, ClauseArena& arena, SolverStats& stats);

  /// Patches every watched reference through an arena relocation map.
  void relocate(const std::vector<std::pair<ClauseRef, ClauseRef>>& map);

  /// Number of watcher entries currently held for ~l, by size class
  /// (test and introspection hook; walks the list).
  std::size_t num_binary_watches(Lit l) const;
  std::size_t num_long_watches(Lit l) const;

  /// True when `cref` currently appears in the watch lists (scans the
  /// first watched literal's list).  Frame retirement uses it to skip
  /// the rare never-attached originals (added while already root-true).
  bool is_attached(const ClauseArena& arena, ClauseRef cref) const {
    const Clause c = arena.get(cref);
    const auto& wl = watches_[static_cast<std::size_t>((~c[0]).index())];
    for (const Watcher& w : wl)
      if (w.cref() == cref) return true;
    return false;
  }

 private:
  // High bit of the stored reference tags an inlined binary watcher;
  // arena offsets stay below it (a 2^31-word arena).
  static constexpr ClauseRef kBinaryTag = 0x80000000u;

  struct Watcher {
    ClauseRef tagged;  // cref | (kBinaryTag if binary)
    Lit blocker;       // long: cached blocking literal; binary: the
                       // other literal — the whole clause, inlined
    bool binary() const { return (tagged & kBinaryTag) != 0; }
    ClauseRef cref() const { return tagged & ~kBinaryTag; }
  };

  std::vector<Watcher>& list(Lit watched) {
    return watches_[static_cast<std::size_t>((~watched).index())];
  }
  void remove_watcher(std::vector<Watcher>& wl, ClauseRef cref);

  /// push_back that charges capacity growth to the tracker (capacity
  /// only ever grows — resize/pop never release watcher heap).
  void push_watcher(std::vector<Watcher>& wl, const Watcher& w) {
    const std::size_t before = wl.capacity();
    wl.push_back(w);
    if (wl.capacity() != before)
      charge((wl.capacity() - before) * sizeof(Watcher));
  }
  void charge(std::size_t bytes) {
    charged_ += bytes;
    if (mem_ != nullptr) mem_->add(bytes);
  }

  std::vector<std::vector<Watcher>> watches_;  // per Lit::index()
  std::size_t charged_ = 0;  // watcher heap bytes pushed to mem_
  MemTracker* mem_ = nullptr;
};

}  // namespace refbmc::sat
