// Unsat-core verification (in the spirit of Zhang & Malik, DATE'03 [18]).
//
// The extracted core is trusted only after an independent check: the
// subformula consisting of exactly the core clauses must itself be
// unsatisfiable.  Used heavily by the test suite; also available to
// applications that want certified cores.
#pragma once

#include <vector>

#include "sat/solver.hpp"
#include "sat/types.hpp"

namespace refbmc::sat {

struct CoreCheck {
  bool core_unsat = false;     // the core alone is UNSAT (the soundness check)
  std::size_t core_clauses = 0;
  std::size_t total_clauses = 0;
  std::size_t core_vars = 0;
  double fraction() const {
    return total_clauses == 0
               ? 0.0
               : static_cast<double>(core_clauses) /
                     static_cast<double>(total_clauses);
  }
};

/// Re-solves the clauses `all_clauses[id-1]` for each id in `core_ids`
/// with a fresh solver and reports whether the subset is unsatisfiable.
CoreCheck verify_core(const std::vector<std::vector<Lit>>& all_clauses,
                      int num_vars, const std::vector<ClauseId>& core_ids);

/// Convenience: pulls the original clauses and core out of `solver`
/// (which must have returned Unsat with track_cdg enabled).
CoreCheck verify_core(const Solver& solver);

}  // namespace refbmc::sat
