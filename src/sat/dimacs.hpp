// DIMACS CNF reading/writing.
//
// Used by the `dimacs_solver` example, the test suite (crafted formulas),
// and for dumping BMC instances for external inspection.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace refbmc::sat {

/// A plain CNF container: clauses over variables 0..num_vars-1.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;

  void add_clause(std::vector<Lit> lits) { clauses.push_back(std::move(lits)); }
  std::size_t num_clauses() const { return clauses.size(); }
};

/// Parses DIMACS from a stream.  Accepts comment lines (`c ...`) anywhere
/// — before the header, after it, and between the literals of a clause
/// spanning lines — plus blank/whitespace-only lines, leading whitespace,
/// multiple clauses per line, and zero-terminated clauses crossing line
/// breaks; tolerates a clause count that disagrees with the header
/// (common in the wild) but rejects literals exceeding the declared
/// variable count, clause data before the header, and trailing junk on
/// the problem line.  Throws std::invalid_argument on malformed input.
Cnf parse_dimacs(std::istream& in);
Cnf parse_dimacs_string(const std::string& text);
Cnf parse_dimacs_file(const std::string& path);

/// Writes DIMACS.
void write_dimacs(std::ostream& out, const Cnf& cnf);
std::string to_dimacs_string(const Cnf& cnf);

}  // namespace refbmc::sat
