// DecisionQueue: the pluggable decision-ordering component of the CDCL
// core.
//
// The queue owns everything the search loop needs to pick the next
// branch: per-variable priorities, the indexed max-heap of free
// variables, the external bmc_score rank feed (paper §3.2–3.3), and the
// dynamic-fallback switch.  The Solver talks only to this interface, so
// orderings are swappable without touching the search loop — exactly the
// "decision order as a first-class component" the portfolio races.
//
// Two implementations ship:
//
//   * Chaff — the paper's scorer: literal-count VSIDS with periodic
//     halve-and-add, combined with the external rank per RankMode
//     (None / Static / Dynamic / Replace).  Wraps DecisionHeuristic, so
//     ordering semantics are bit-for-bit those of the monolithic solver.
//   * Evsids — MiniSat-lineage exponential VSIDS: per-variable activity
//     bumped for every variable seen in conflict analysis, inflation by
//     1/decay per conflict, rescale on overflow.  The fifth portfolio
//     entrant; it honours the same RankMode combination so rank-primary
//     orderings can ride on it too.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "sat/heuristic.hpp"
#include "sat/trail.hpp"
#include "sat/types.hpp"
#include "util/heap.hpp"

namespace refbmc::sat {

enum class DecisionMode {
  Chaff,   // periodic halve-and-add literal scores (the paper's solver)
  Evsids,  // exponential VSIDS (MiniSat lineage)
};

inline const char* to_string(DecisionMode m) {
  switch (m) {
    case DecisionMode::Chaff: return "chaff";
    case DecisionMode::Evsids: return "evsids";
  }
  return "?";
}

/// Inverse of to_string; nullopt for unknown names.
std::optional<DecisionMode> parse_decision_mode(std::string_view name);

class DecisionQueue {
 public:
  virtual ~DecisionQueue() = default;

  // ---- variable registration and the rank feed -----------------------
  virtual void add_var() = 0;
  virtual void set_rank_mode(RankMode mode) = 0;
  virtual RankMode rank_mode() const = 0;
  /// External per-variable rank (bmc_score); primary key while
  /// rank_active().
  virtual void set_rank(Var v, double score) = 0;
  /// Rebuilds the heap after bulk priority changes (rank feed applied).
  virtual void rebuild() = 0;

  /// Bulk MID-SOLVE rank refresh (the portfolio's shared ordering): the
  /// per-prepare feed is set_rank + rebuild before solve(); this is the
  /// in-search variant the solver drives from its RankRefresh poll at
  /// decision-level-0 boundaries.  New scores are always installed, but
  /// the heap is re-keyed only when the rank currently participates in
  /// the order — and the dynamic-fallback switch is never touched, so a
  /// queue that already fell back to activity order stays fallen back
  /// (§3.3's "this instance is hard" verdict outlives a refresh).
  /// Returns whether the heap order was rebuilt.
  bool refresh_ranks(std::span<const double> rank_by_var);

  // ---- scoring hooks --------------------------------------------------
  /// One call per literal occurrence in the original formula.
  virtual void on_original_literal(Lit l) = 0;
  /// One call per literal of each freshly learned clause.
  virtual void on_learned_literal(Lit l) = 0;
  /// One call per variable marked during conflict analysis (the EVSIDS
  /// bump site; Chaff scores by learned literals instead).
  virtual void on_analyzed_var(Var v) = 0;
  /// Once per conflict: decay / periodic update.
  virtual void on_conflict() = 0;

  // ---- dynamic fallback (§3.3) ----------------------------------------
  /// Returns true when this call switched from rank-primary to the
  /// activity order.
  virtual bool on_decision(std::uint64_t num_decisions,
                           std::uint64_t num_original_literals,
                           int switch_divisor) = 0;
  virtual void reset_switch() = 0;
  virtual bool rank_active() const = 0;
  virtual bool switched() const = 0;

  // ---- the queue itself -----------------------------------------------
  virtual void insert(Var v) = 0;
  virtual bool empty() const = 0;
  virtual Var pop() = 0;
  /// Decision phase for v by the implementation's literal preference.
  virtual Lit pick_phase(Var v) const = 0;

  /// Pops until a variable unassigned on `trail` surfaces and returns the
  /// decision literal for it — the saved phase when the trail has one,
  /// the implementation's preference otherwise.  kLitUndef when no free
  /// variable remains (model found).
  Lit pick_branch(const Trail& trail);
};

/// Factory.  `vsids_update_period` feeds the Chaff scorer,
/// `evsids_decay` the Evsids scorer; both queues honour `rank_mode`.
std::unique_ptr<DecisionQueue> make_decision_queue(DecisionMode mode,
                                                   RankMode rank_mode,
                                                   int vsids_update_period,
                                                   double evsids_decay);

}  // namespace refbmc::sat
