#include "sat/heuristic.hpp"

namespace refbmc::sat {

DecisionHeuristic::DecisionHeuristic(int update_period)
    : update_period_(update_period) {
  REFBMC_EXPECTS(update_period > 0);
}

void DecisionHeuristic::add_var() {
  score_.push_back(0.0);
  score_.push_back(0.0);
  new_.push_back(0);
  new_.push_back(0);
  rank_.push_back(0.0);
  heap_.reserve_keys(static_cast<int>(rank_.size()));
}

void DecisionHeuristic::on_original_literal(Lit l) {
  score_[static_cast<std::size_t>(l.index())] += 1.0;
}

void DecisionHeuristic::set_rank(Var v, double score) {
  rank_[static_cast<std::size_t>(v)] = score;
}

void DecisionHeuristic::on_learned_literal(Lit l) {
  new_[static_cast<std::size_t>(l.index())] += 1;
}

void DecisionHeuristic::on_conflict() {
  if (++conflicts_since_update_ >= update_period_) {
    conflicts_since_update_ = 0;
    periodic_update();
  }
}

void DecisionHeuristic::periodic_update() {
  ++num_updates_;
  for (std::size_t i = 0; i < score_.size(); ++i) {
    score_[i] = score_[i] / 2.0 + static_cast<double>(new_[i]);
    new_[i] = 0;
  }
  // Scores moved wholesale; the heap order is stale.
  heap_.rebuild();
}

bool DecisionHeuristic::on_decision(std::uint64_t num_decisions,
                                    std::uint64_t num_original_literals,
                                    int switch_divisor) {
  if (mode_ != RankMode::Dynamic || switched_) return false;
  REFBMC_EXPECTS(switch_divisor > 0);
  if (num_decisions >
      num_original_literals / static_cast<std::uint64_t>(switch_divisor)) {
    switched_ = true;
    heap_.rebuild();  // primary key changed from bmc_score to cha_score
    return true;
  }
  return false;
}

}  // namespace refbmc::sat
