#include "sat/solver.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace refbmc::sat {

Solver::Solver(SolverConfig config)
    : config_(config), heuristic_(config.vsids_update_period) {
  heuristic_.set_rank_mode(config_.rank_mode);
}

Var Solver::new_var() {
  const Var v = num_vars();
  assigns_.push_back(l_Undef);
  level_.push_back(0);
  reason_.push_back(kClauseRefUndef);
  watches_.emplace_back();
  watches_.emplace_back();
  seen_.push_back(0);
  seen_closure_.push_back(0);
  saved_phase_.push_back(0);
  heuristic_.add_var();
  heuristic_.insert(v);
  return v;
}

void Solver::set_variable_rank(std::span<const double> rank_by_var) {
  REFBMC_EXPECTS(rank_by_var.size() <= static_cast<std::size_t>(num_vars()));
  for (std::size_t v = 0; v < rank_by_var.size(); ++v)
    heuristic_.set_rank(static_cast<Var>(v), rank_by_var[v]);
  heuristic_.rebuild_heap();
}

const std::vector<Lit>& Solver::original_clause(ClauseId id) const {
  REFBMC_EXPECTS_MSG(is_original_clause(id), "not an original clause id");
  return lits_by_id_[id - 1];
}

bool Solver::is_original_clause(ClauseId id) const {
  return id >= 1 && id <= last_id_ && id_is_original_[id - 1] != 0;
}

bool Solver::add_clause(const std::vector<Lit>& lits) {
  REFBMC_EXPECTS_MSG(decision_level() == 0,
                     "clauses can only be added at the root level");
  for (const Lit l : lits)
    REFBMC_EXPECTS_MSG(!l.is_undef() && l.var() < num_vars(),
                       "literal over unknown variable");

  // Every call consumes an id so external clause indexing stays in sync.
  const ClauseId id = ++last_id_;
  id_is_original_.push_back(1);
  original_ids_.push_back(id);
  if (config_.track_cdg) cdg_.register_original(id);

  // Dedup; detect tautology.
  std::vector<Lit> c(lits.begin(), lits.end());
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  bool tautology = false;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (c[i].var() == c[i + 1].var()) {
      tautology = true;
      break;
    }
  }
  lits_by_id_.push_back(c);

  if (tautology) return ok_;  // recorded but irrelevant to solving

  num_orig_lits_ += c.size();
  for (const Lit l : c) heuristic_.on_original_literal(l);

  if (!ok_) return false;  // already unsat; id bookkeeping done above

  if (c.empty()) {
    ok_ = false;
    if (config_.track_cdg) cdg_.set_final_conflict({id});
    return false;
  }

  // Partition: non-false-at-root literals first.  False-at-root literals
  // are kept (the clause stays intact for reason/core identity); they can
  // never become true again since root assignments persist.
  std::size_t num_non_false = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (value(c[i]) != l_False) std::swap(c[num_non_false++], c[i]);
  }

  if (num_non_false == 0) {
    // Clause falsified by root-level units: the empty clause is derivable.
    ok_ = false;
    if (config_.track_cdg) {
      std::vector<ClauseId> ants{id};
      for (const Lit l : c) collect_reason_closure(l.var(), ants);
      clear_closure_marks();
      cdg_.set_final_conflict(ants);
    }
    return false;
  }

  const ClauseRef cref = arena_.alloc(c, id, /*learnt=*/false);

  if (num_non_false == 1) {
    if (value(c[0]) == l_True) return ok_;  // satisfied at root forever
    // Effectively a unit clause: propagate immediately so later adds see
    // the consequences.  No watches needed — it can never be falsified
    // except through a root conflict, which we detect here.
    enqueue(c[0], cref);
    const ClauseRef confl = propagate();
    if (confl != kClauseRefUndef) {
      ok_ = false;
      if (config_.track_cdg) analyze_final_conflict(confl);
      return false;
    }
    return ok_;
  }

  attach_clause(cref);
  return ok_;
}

void Solver::attach_clause(ClauseRef cref) {
  const Clause c = arena_.get(cref);
  REFBMC_ASSERT(c.size() >= 2);
  watches_[static_cast<std::size_t>((~c[0]).index())].push_back(
      Watcher{cref, c[1]});
  watches_[static_cast<std::size_t>((~c[1]).index())].push_back(
      Watcher{cref, c[0]});
}

void Solver::detach_clause(ClauseRef cref) {
  const Clause c = arena_.get(cref);
  for (const Lit w : {c[0], c[1]}) {
    auto& wl = watches_[static_cast<std::size_t>((~w).index())];
    for (std::size_t i = 0; i < wl.size(); ++i) {
      if (wl[i].cref == cref) {
        wl[i] = wl.back();
        wl.pop_back();
        break;
      }
    }
  }
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  REFBMC_ASSERT(value(l) == l_Undef);
  const auto v = static_cast<std::size_t>(l.var());
  assigns_[v] = lbool(!l.negated());
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
}

void Solver::cancel_until(int level) {
  if (decision_level() <= level) return;
  const int bound = trail_lim_[static_cast<std::size_t>(level)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    const Var v = trail_[static_cast<std::size_t>(i)].var();
    if (config_.phase_saving)
      saved_phase_[static_cast<std::size_t>(v)] =
          assigns_[static_cast<std::size_t>(v)] == l_True ? 1 : 2;
    assigns_[static_cast<std::size_t>(v)] = l_Undef;
    reason_[static_cast<std::size_t>(v)] = kClauseRefUndef;
    heuristic_.insert(v);
  }
  trail_.resize(static_cast<std::size_t>(bound));
  trail_lim_.resize(static_cast<std::size_t>(level));
  if (qhead_ > bound) qhead_ = bound;
}

ClauseRef Solver::propagate() {
  ClauseRef confl = kClauseRefUndef;
  while (qhead_ < static_cast<int>(trail_.size())) {
    const Lit p = trail_[static_cast<std::size_t>(qhead_++)];
    ++stats_.propagations;
    auto& wl = watches_[static_cast<std::size_t>(p.index())];
    std::size_t i = 0, j = 0;
    const std::size_t n = wl.size();
    while (i < n) {
      const Watcher w = wl[i++];
      if (value(w.blocker) == l_True) {
        wl[j++] = w;
        continue;
      }
      Clause c = arena_.get(w.cref);
      // Ensure the false literal (~p) is at position 1.
      const Lit not_p = ~p;
      if (c[0] == not_p) c.swap_lits(0, 1);
      REFBMC_ASSERT(c[1] == not_p);
      const Lit first = c[0];
      if (first != w.blocker && value(first) == l_True) {
        wl[j++] = Watcher{w.cref, first};
        continue;
      }
      // Look for a replacement watch.
      bool found = false;
      for (std::uint32_t k = 2; k < c.size(); ++k) {
        if (value(c[k]) != l_False) {
          c.swap_lits(1, k);
          watches_[static_cast<std::size_t>((~c[1]).index())].push_back(
              Watcher{w.cref, first});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      wl[j++] = Watcher{w.cref, first};
      if (value(first) == l_False) {
        confl = w.cref;
        qhead_ = static_cast<int>(trail_.size());
        while (i < n) wl[j++] = wl[i++];
        break;
      }
      enqueue(first, w.cref);
    }
    wl.resize(j);
    if (confl != kClauseRefUndef) break;
  }
  return confl;
}

void Solver::collect_reason_closure(Var v, std::vector<ClauseId>& antecedents) {
  // Collects the ids of all clauses participating in the propagation
  // derivation of `v`, transitively, stopping at decision/assumption
  // variables (no reason clause).  Marks persist until
  // clear_closure_marks() so repeated calls within one analysis dedup.
  if (seen_closure_[static_cast<std::size_t>(v)]) return;
  seen_closure_[static_cast<std::size_t>(v)] = 1;
  closure_clear_.push_back(v);
  std::vector<Var> work{v};
  while (!work.empty()) {
    const Var u = work.back();
    work.pop_back();
    const ClauseRef r = reason_[static_cast<std::size_t>(u)];
    if (r == kClauseRefUndef) continue;  // decision or assumption
    const Clause c = arena_.get(r);
    antecedents.push_back(c.id());
    for (std::uint32_t k = 0; k < c.size(); ++k) {
      const Var w = c[k].var();
      if (w == u || seen_closure_[static_cast<std::size_t>(w)]) continue;
      seen_closure_[static_cast<std::size_t>(w)] = 1;
      closure_clear_.push_back(w);
      work.push_back(w);
    }
  }
}

void Solver::clear_closure_marks() {
  for (const Var v : closure_clear_)
    seen_closure_[static_cast<std::size_t>(v)] = 0;
  closure_clear_.clear();
}

void Solver::analyze_final_conflict(ClauseRef confl) {
  std::vector<ClauseId> ants;
  const Clause c = arena_.get(confl);
  ants.push_back(c.id());
  for (std::uint32_t k = 0; k < c.size(); ++k)
    collect_reason_closure(c[k].var(), ants);
  clear_closure_marks();
  cdg_.set_final_conflict(ants);
}

void Solver::analyze_assumption_refutation(Lit p) {
  // `p` is an assumption that propagation (from the formula plus earlier
  // assumptions) has driven false: the clauses in its reason closure
  // derive the refutation of the assumption set.
  std::vector<ClauseId> ants;
  collect_reason_closure(p.var(), ants);
  clear_closure_marks();
  cdg_.set_final_conflict(ants);
}

int Solver::analyze(ClauseRef confl, std::vector<Lit>& learnt,
                    std::vector<ClauseId>& antecedents) {
  learnt.clear();
  learnt.push_back(kLitUndef);  // slot for the asserting literal
  antecedents.clear();

  int path_count = 0;
  Lit p = kLitUndef;
  int index = static_cast<int>(trail_.size()) - 1;

  do {
    REFBMC_ASSERT(confl != kClauseRefUndef);
    Clause c = arena_.get(confl);
    if (config_.track_cdg) antecedents.push_back(c.id());
    if (c.learnt()) bump_clause_activity(c);

    for (std::uint32_t k = (p == kLitUndef) ? 0 : 1; k < c.size(); ++k) {
      const Lit q = c[k];
      const auto vq = static_cast<std::size_t>(q.var());
      if (seen_[vq]) continue;
      if (level_[vq] > 0) {
        seen_[vq] = 1;
        analyze_toclear_.push_back(q);
        if (level_[vq] >= decision_level()) {
          ++path_count;
        } else {
          learnt.push_back(q);
        }
      } else if (config_.track_cdg) {
        // Root-level literal resolved away by its unit derivation.
        collect_reason_closure(q.var(), antecedents);
      }
    }

    // Next clause to resolve with: last seen trail literal.
    while (!seen_[static_cast<std::size_t>(
        trail_[static_cast<std::size_t>(index)].var())])
      --index;
    p = trail_[static_cast<std::size_t>(index)];
    --index;
    confl = reason_[static_cast<std::size_t>(p.var())];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --path_count;
  } while (path_count > 0);
  learnt[0] = ~p;

  // Recursive clause minimization: drop literals implied by the rest.
  std::uint32_t abstract = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i)
    abstract |= abstract_level(learnt[i].var());
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const Var v = learnt[i].var();
    if (reason_[static_cast<std::size_t>(v)] == kClauseRefUndef ||
        !lit_redundant(learnt[i], abstract, antecedents)) {
      learnt[kept++] = learnt[i];
    } else {
      ++stats_.minimized_literals;
    }
  }
  learnt.resize(kept);

  // Find the backjump level: maximal level among learnt[1..].
  int backjump = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[static_cast<std::size_t>(learnt[i].var())] >
          level_[static_cast<std::size_t>(learnt[max_i].var())])
        max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    backjump = level_[static_cast<std::size_t>(learnt[1].var())];
  }

  for (const Lit l : analyze_toclear_)
    seen_[static_cast<std::size_t>(l.var())] = 0;
  analyze_toclear_.clear();
  clear_closure_marks();

  return backjump;
}

bool Solver::lit_redundant(Lit p, std::uint32_t abstract_levels,
                           std::vector<ClauseId>& antecedents) {
  // Checks whether ~p is implied by the other learnt literals through the
  // implication graph.  On success the reason clauses used become
  // antecedents of the learned clause; on failure all tentative marks and
  // antecedents are rolled back.
  std::vector<Lit> stack{p};
  const std::size_t toclear_top = analyze_toclear_.size();
  const std::size_t ants_top = antecedents.size();
  const std::size_t closure_top = closure_clear_.size();

  while (!stack.empty()) {
    const Lit q = stack.back();
    stack.pop_back();
    const ClauseRef r = reason_[static_cast<std::size_t>(q.var())];
    REFBMC_ASSERT(r != kClauseRefUndef);
    const Clause c = arena_.get(r);
    if (config_.track_cdg) antecedents.push_back(c.id());
    for (std::uint32_t k = 1; k < c.size(); ++k) {
      const Lit l = c[k];
      const auto v = static_cast<std::size_t>(l.var());
      if (seen_[v]) continue;
      if (level_[v] == 0) {
        if (config_.track_cdg) collect_reason_closure(l.var(), antecedents);
        continue;
      }
      if (reason_[v] != kClauseRefUndef &&
          (abstract_level(l.var()) & abstract_levels) != 0) {
        seen_[v] = 1;
        analyze_toclear_.push_back(l);
        stack.push_back(l);
      } else {
        // Not removable: roll back tentative state.
        for (std::size_t i = toclear_top; i < analyze_toclear_.size(); ++i)
          seen_[static_cast<std::size_t>(analyze_toclear_[i].var())] = 0;
        analyze_toclear_.resize(toclear_top);
        for (std::size_t i = closure_top; i < closure_clear_.size(); ++i)
          seen_closure_[static_cast<std::size_t>(closure_clear_[i])] = 0;
        closure_clear_.resize(closure_top);
        antecedents.resize(ants_top);
        return false;
      }
    }
  }
  return true;
}

void Solver::bump_clause_activity(Clause c) {
  c.set_activity(c.activity() + static_cast<float>(cla_inc_));
  if (c.activity() > 1e20f) {
    for (const ClauseRef cref : learned_crefs_) {
      Clause lc = arena_.get(cref);
      lc.set_activity(lc.activity() * 1e-20f);
    }
    cla_inc_ *= 1e-20;
  }
}

void Solver::record_learned(const std::vector<Lit>& learnt,
                            const std::vector<ClauseId>& antecedents) {
  const ClauseId id = ++last_id_;
  id_is_original_.push_back(0);
  lits_by_id_.emplace_back();  // placeholder: learned lits live in the arena
  ++stats_.learned_clauses;
  stats_.learned_literals += learnt.size();
  if (config_.track_cdg) cdg_.add_learned(id, antecedents);
  for (const Lit l : learnt) heuristic_.on_learned_literal(l);

  const ClauseRef cref = arena_.alloc(learnt, id, /*learnt=*/true);
  Clause c = arena_.get(cref);
  c.set_activity(static_cast<float>(cla_inc_));
  if (learnt.size() >= 2) {
    attach_clause(cref);
    learned_crefs_.push_back(cref);
  }
  // Unit learned clauses are permanent root facts; they are not attached
  // (nothing to watch) and never deleted (not in learned_crefs_), but they
  // do serve as reasons, keeping the CDG complete.
  enqueue(learnt[0], cref);
}

bool Solver::clause_locked(ClauseRef cref) const {
  const Clause c = arena_.get(cref);
  const Var v = c[0].var();
  return reason_[static_cast<std::size_t>(v)] == cref &&
         value(c[0]) == l_True;
}

void Solver::strengthen_learned(ClauseRef cref) {
  // Drops tail literals that are false at decision level 0 — permanently
  // false, so removal is sound at any current level.  The watched
  // positions 0/1 are left alone (watch invariants stay intact; a false
  // watch of a satisfied/propagating clause is legal and rare).
  Clause c = arena_.get(cref);
  std::uint32_t i = 2;
  std::uint32_t n = c.size();
  while (i < n) {
    const Lit l = c[i];
    if (value(l) == l_False &&
        level_[static_cast<std::size_t>(l.var())] == 0) {
      c.swap_lits(i, n - 1);
      --n;
    } else {
      ++i;
    }
  }
  if (n < c.size()) {
    stats_.strengthened_literals += c.size() - n;
    arena_.shrink_clause(cref, n);
  }
}

void Solver::reduce_db() {
  ++stats_.reduce_db_runs;
  std::sort(learned_crefs_.begin(), learned_crefs_.end(),
            [this](ClauseRef a, ClauseRef b) {
              return arena_.get(a).activity() < arena_.get(b).activity();
            });
  const std::size_t target = learned_crefs_.size() / 2;
  std::size_t kept = 0;
  std::size_t removed = 0;
  // In-place strengthening of kept clauses is only done when the CDG is
  // off: with core tracking on, a strengthened clause would additionally
  // depend on the reason closure of the removed root literals, and the
  // CDG's antecedent lists are frozen at learn time — dropping the
  // literals without those edges could make extracted cores too small.
  const bool strengthen = !config_.track_cdg;

  for (std::size_t i = 0; i < learned_crefs_.size(); ++i) {
    const ClauseRef cref = learned_crefs_[i];
    const Clause c = arena_.get(cref);
    if (removed < target && c.size() > 2 && !clause_locked(cref)) {
      detach_clause(cref);
      arena_.free_clause(cref);
      ++removed;
    } else {
      if (strengthen) strengthen_learned(cref);
      learned_crefs_[kept++] = cref;
    }
  }
  learned_crefs_.resize(kept);
  stats_.deleted_clauses += removed;
  if (arena_.should_collect()) garbage_collect();
}

void Solver::relocate(
    ClauseRef& cref,
    const std::vector<std::pair<ClauseRef, ClauseRef>>& map) const {
  const auto it = std::lower_bound(
      map.begin(), map.end(), cref,
      [](const std::pair<ClauseRef, ClauseRef>& p, ClauseRef c) {
        return p.first < c;
      });
  REFBMC_ASSERT(it != map.end() && it->first == cref);
  cref = it->second;
}

void Solver::garbage_collect() {
  ++stats_.arena_gcs;
  std::vector<std::pair<ClauseRef, ClauseRef>> map;
  arena_.garbage_collect(map);  // map is sorted by old ref (scan order)
  for (auto& wl : watches_)
    for (auto& w : wl) relocate(w.cref, map);
  for (std::size_t v = 0; v < reason_.size(); ++v) {
    if (reason_[v] != kClauseRefUndef && assigns_[v] != l_Undef)
      relocate(reason_[v], map);
    else
      reason_[v] = kClauseRefUndef;
  }
  for (auto& cref : learned_crefs_) relocate(cref, map);
}

Lit Solver::pick_branch_literal() {
  while (!heuristic_.heap_empty()) {
    const Var v = heuristic_.pop();
    if (value(v) != l_Undef) continue;
    if (config_.phase_saving &&
        saved_phase_[static_cast<std::size_t>(v)] != 0)
      return Lit::make(v, saved_phase_[static_cast<std::size_t>(v)] == 2);
    return heuristic_.pick_phase(v);
  }
  return kLitUndef;
}

std::int64_t Solver::luby(std::int64_t x) {
  // Luby sequence 1,1,2,1,1,2,4,... at 0-based index x (MiniSat's scheme:
  // find the finite subsequence containing x, then recurse into it).
  std::int64_t size = 1;
  std::int64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x = x % size;
  }
  return 1ll << seq;
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  Timer timer;
  assumptions_ = assumptions;
  last_assumptions_ = assumptions;
  for (const Lit a : assumptions_)
    REFBMC_EXPECTS_MSG(!a.is_undef() && a.var() < num_vars(),
                       "assumption over unknown variable");
  heuristic_.reset_switch();
  stats_.rank_switched = false;
  solved_unsat_ = false;

  if (!ok_) {
    stats_.solve_time_sec += timer.elapsed_sec();
    solved_unsat_ = true;
    return Result::Unsat;
  }
  if (stop_requested()) {
    // Pre-cancelled: give the verdict-less answer without exploring.
    stats_.solve_time_sec += timer.elapsed_sec();
    return Result::Unknown;
  }

  const Deadline deadline(config_.time_limit_sec);
  const std::int64_t conflicts_at_solve_start =
      static_cast<std::int64_t>(stats_.conflicts);
  std::int64_t restart_budget =
      config_.enable_restarts
          ? config_.restart_base * luby(static_cast<std::int64_t>(stats_.restarts))
          : -1;
  std::int64_t conflicts_this_restart = 0;
  std::int64_t reduce_limit =
      config_.reduce_base +
      static_cast<std::int64_t>(learned_crefs_.size());

  std::vector<Lit> learnt;
  std::vector<ClauseId> antecedents;

  const auto finish = [&](Result r) {
    cancel_until(0);
    assumptions_.clear();
    stats_.solve_time_sec += timer.elapsed_sec();
    return r;
  };

  while (true) {
    const ClauseRef confl = propagate();
    if (confl != kClauseRefUndef) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (decision_level() == 0) {
        if (config_.track_cdg) analyze_final_conflict(confl);
        ok_ = false;
        solved_unsat_ = true;
        return finish(Result::Unsat);
      }
      const int backjump = analyze(confl, learnt, antecedents);
      cancel_until(backjump);
      record_learned(learnt, antecedents);
      decay_clause_activity();
      heuristic_.on_conflict();

      // Resource limits and cancellation, checked at conflicts for low
      // overhead (a relaxed atomic load per conflict is noise next to BCP).
      if (stop_requested() ||
          (config_.conflict_limit >= 0 &&
           static_cast<std::int64_t>(stats_.conflicts) -
                   conflicts_at_solve_start >=
               config_.conflict_limit) ||
          ((stats_.conflicts & 127) == 0 && deadline.expired())) {
        return finish(Result::Unknown);
      }
      continue;
    }

    // No conflict: restart / reduce / decide.
    if (restart_budget >= 0 && conflicts_this_restart >= restart_budget) {
      if (stop_requested()) return finish(Result::Unknown);
      ++stats_.restarts;
      conflicts_this_restart = 0;
      restart_budget = config_.restart_base *
                       luby(static_cast<std::int64_t>(stats_.restarts));
      cancel_until(0);
      continue;
    }
    if (config_.enable_reduce_db &&
        static_cast<std::int64_t>(learned_crefs_.size()) >= reduce_limit) {
      reduce_db();
      reduce_limit =
          static_cast<std::int64_t>(static_cast<double>(reduce_limit) *
                                    config_.reduce_grow);
    }

    // Assumption decisions come first, in order, one level each.
    Lit next = kLitUndef;
    while (decision_level() < static_cast<int>(assumptions_.size())) {
      const Lit a =
          assumptions_[static_cast<std::size_t>(decision_level())];
      if (value(a) == l_True) {
        new_decision_level();  // placeholder level keeps indices aligned
      } else if (value(a) == l_False) {
        // The formula (plus earlier assumptions) refutes this assumption.
        if (config_.track_cdg) analyze_assumption_refutation(a);
        solved_unsat_ = true;
        return finish(Result::Unsat);
      } else {
        next = a;
        break;
      }
    }

    if (next == kLitUndef) {
      next = pick_branch_literal();
      if (next == kLitUndef) {
        // All variables assigned: model found.
        model_ = assigns_;
        return finish(Result::Sat);
      }
    }
    ++stats_.decisions;
    // Long conflict-free decision runs (easy SAT instances) still need to
    // observe cancellation and the deadline.  `next` was already popped
    // off the decision heap; put it back or it would be lost to every
    // later solve() on this solver.
    if ((stats_.decisions & 255) == 0 &&
        (stop_requested() || deadline.expired())) {
      heuristic_.insert(next.var());
      return finish(Result::Unknown);
    }
    if (heuristic_.on_decision(stats_.decisions, num_orig_lits_,
                               config_.dynamic_switch_divisor)) {
      stats_.rank_switched = true;
    }
    new_decision_level();
    enqueue(next, kClauseRefUndef);
  }
}

lbool Solver::model_value(Var v) const {
  REFBMC_EXPECTS_MSG(!model_.empty(), "no model (last solve was not SAT)");
  REFBMC_EXPECTS(v >= 0 && static_cast<std::size_t>(v) < model_.size());
  return model_[static_cast<std::size_t>(v)];
}

std::vector<ClauseId> Solver::unsat_core() const {
  REFBMC_EXPECTS_MSG(solved_unsat_, "unsat core requires an UNSAT result");
  REFBMC_EXPECTS_MSG(config_.track_cdg,
                     "unsat core requires track_cdg = true");
  return cdg_.original_core();
}

std::vector<Var> Solver::unsat_core_vars() const {
  const std::vector<ClauseId> core = unsat_core();
  std::vector<bool> in(static_cast<std::size_t>(num_vars()), false);
  for (const ClauseId id : core)
    for (const Lit l : original_clause(id))
      in[static_cast<std::size_t>(l.var())] = true;
  std::vector<Var> vars;
  for (Var v = 0; v < num_vars(); ++v)
    if (in[static_cast<std::size_t>(v)]) vars.push_back(v);
  return vars;
}

}  // namespace refbmc::sat
