#include "sat/solver.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace refbmc::sat {

Solver::Solver(SolverConfig config)
    : config_(config),
      trail_(config.phase_saving),
      db_(config.clause_decay, config.glue_lbd, config.tier_lbd),
      queue_(make_decision_queue(config.decision, config.rank_mode,
                                 config.vsids_update_period,
                                 config.evsids_decay)),
      bump_analyzed_(config.decision == DecisionMode::Evsids) {
  if (config_.mem_tracker != nullptr) {
    db_.arena().set_mem_tracker(config_.mem_tracker);
    prop_.set_mem_tracker(config_.mem_tracker);
  }
}

Var Solver::new_var() {
  const Var v = trail_.new_var();
  prop_.new_var();
  seen_.push_back(0);
  seen_closure_.push_back(0);
  queue_->add_var();
  return v;
}

void Solver::set_variable_rank(std::span<const double> rank_by_var) {
  REFBMC_EXPECTS(rank_by_var.size() <= static_cast<std::size_t>(num_vars()));
  for (std::size_t v = 0; v < rank_by_var.size(); ++v)
    queue_->set_rank(static_cast<Var>(v), rank_by_var[v]);
  queue_->rebuild();
}

bool Solver::add_clause(const std::vector<Lit>& lits) {
  REFBMC_EXPECTS_MSG(
      trail_.decision_level() == 0 || config_.assumption_savepoint,
      "clauses can only be added at the root level");
  for (const Lit l : lits)
    REFBMC_EXPECTS_MSG(!l.is_undef() && l.var() < num_vars(),
                       "literal over unknown variable");

  // Dedup; detect tautology.
  std::vector<Lit> c(lits.begin(), lits.end());
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  bool tautology = false;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (c[i].var() == c[i + 1].var()) {
      tautology = true;
      break;
    }
  }

  // Every call consumes an id so external clause indexing stays in sync.
  const ClauseId id = db_.register_original(c, /*counted=*/!tautology);
  if (config_.track_cdg) cdg_.register_original(id);

  if (tautology) return ok_;  // recorded but irrelevant to solving

  for (const Lit l : c) queue_->on_original_literal(l);

  if (!ok_) return false;  // already unsat; id bookkeeping done above

  if (c.empty()) {
    ok_ = false;
    if (config_.track_cdg) cdg_.set_final_conflict({id});
    return false;
  }

  if (trail_.decision_level() > 0) {
    // Savepoint mode: the trail still holds a kept assumption prefix.
    // When the clause has two literals non-false under the live prefix it
    // attaches in place (watch invariants hold; nothing propagates).
    // Otherwise flush to the root and fall through to the usual handling
    // — the savepoint is rebuilt by the next solve().
    std::size_t nnf = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (value(c[i]) != l_False) std::swap(c[nnf++], c[i]);
    }
    if (nnf >= 2) {
      const ClauseRef cref = db_.alloc_original(c, id);
      prop_.attach(db_.arena(), cref);
      return ok_;
    }
    backtrack(0);
  }

  // Partition: non-false-at-root literals first.  False-at-root literals
  // are kept (the clause stays intact for reason/core identity); they can
  // never become true again since root assignments persist.
  std::size_t num_non_false = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (value(c[i]) != l_False) std::swap(c[num_non_false++], c[i]);
  }

  if (num_non_false == 0) {
    // Clause falsified by root-level units: the empty clause is derivable.
    ok_ = false;
    if (config_.track_cdg) {
      std::vector<ClauseId> ants{id};
      for (const Lit l : c) collect_reason_closure(l.var(), ants);
      clear_closure_marks();
      cdg_.set_final_conflict(ants);
    }
    return false;
  }

  const ClauseRef cref = db_.alloc_original(c, id);

  if (num_non_false == 1) {
    if (value(c[0]) == l_True) return ok_;  // satisfied at root forever
    // Effectively a unit clause: propagate immediately so later adds see
    // the consequences.  No watches needed — it can never be falsified
    // except through a root conflict, which we detect here.
    trail_.assign(c[0], cref);
    const ClauseRef confl = propagate();
    if (confl != kClauseRefUndef) {
      ok_ = false;
      if (config_.track_cdg) analyze_final_conflict(confl);
      return false;
    }
    return ok_;
  }

  prop_.attach(db_.arena(), cref);
  return ok_;
}

void Solver::backtrack(int level) {
  trail_.cancel_until(level, [this](Var v) { queue_->insert(v); });
}

void Solver::collect_reason_closure(Var v, std::vector<ClauseId>& antecedents) {
  // Collects the ids of all clauses participating in the propagation
  // derivation of `v`, transitively, stopping at decision/assumption
  // variables (no reason clause).  Marks persist until
  // clear_closure_marks() so repeated calls within one analysis dedup.
  if (seen_closure_[static_cast<std::size_t>(v)]) return;
  seen_closure_[static_cast<std::size_t>(v)] = 1;
  closure_clear_.push_back(v);
  std::vector<Var> work{v};
  while (!work.empty()) {
    const Var u = work.back();
    work.pop_back();
    const ClauseRef r = trail_.reason(u);
    if (r == kClauseRefUndef) continue;  // decision or assumption
    const Clause c = db_.get(r);
    antecedents.push_back(c.id());
    for (std::uint32_t k = 0; k < c.size(); ++k) {
      const Var w = c[k].var();
      if (w == u || seen_closure_[static_cast<std::size_t>(w)]) continue;
      seen_closure_[static_cast<std::size_t>(w)] = 1;
      closure_clear_.push_back(w);
      work.push_back(w);
    }
  }
}

void Solver::clear_closure_marks() {
  for (const Var v : closure_clear_)
    seen_closure_[static_cast<std::size_t>(v)] = 0;
  closure_clear_.clear();
}

void Solver::analyze_final_conflict(ClauseRef confl) {
  std::vector<ClauseId> ants;
  const Clause c = db_.get(confl);
  ants.push_back(c.id());
  for (std::uint32_t k = 0; k < c.size(); ++k)
    collect_reason_closure(c[k].var(), ants);
  clear_closure_marks();
  cdg_.set_final_conflict(ants);
}

void Solver::analyze_assumption_refutation(Lit p) {
  // `p` is an assumption that propagation (from the formula plus earlier
  // assumptions) has driven false: the clauses in its reason closure
  // derive the refutation of the assumption set.
  std::vector<ClauseId> ants;
  collect_reason_closure(p.var(), ants);
  clear_closure_marks();
  cdg_.set_final_conflict(ants);
}

Clause Solver::reason_clause(Lit p) {
  const ClauseRef r = trail_.reason(p.var());
  REFBMC_ASSERT(r != kClauseRefUndef);
  Clause c = db_.get(r);
  if (c[0] != p) {
    // Only binary propagation assigns without normalizing the clause.
    REFBMC_ASSERT(c.size() == 2 && c[1] == p);
    c.swap_lits(0, 1);
  }
  return c;
}

int Solver::analyze(ClauseRef confl, std::vector<Lit>& learnt,
                    std::vector<ClauseId>& antecedents) {
  learnt.clear();
  learnt.push_back(kLitUndef);  // slot for the asserting literal
  antecedents.clear();

  int path_count = 0;
  Lit p = kLitUndef;
  int index = static_cast<int>(trail_.size()) - 1;
  Clause c = db_.get(confl);

  do {
    if (config_.track_cdg) antecedents.push_back(c.id());
    // Bump and re-tier: a clause re-derived through fewer levels now
    // deserves a better (lower) LBD.  Clauses already in the glue tier
    // cannot improve — skip the recomputation on them — and the capped
    // walk stops as soon as improvement is ruled out.
    if (c.learnt()) {
      const std::uint32_t stored = c.lbd();
      const std::uint32_t lbd =
          stored > static_cast<std::uint32_t>(config_.glue_lbd)
              ? db_.compute_lbd_capped(c, trail_, stored)
              : 0;
      db_.on_used_in_analysis(c, lbd);
    }

    for (std::uint32_t k = (p == kLitUndef) ? 0 : 1; k < c.size(); ++k) {
      const Lit q = c[k];
      const auto vq = static_cast<std::size_t>(q.var());
      if (seen_[vq]) continue;
      if (trail_.level(q.var()) > 0) {
        seen_[vq] = 1;
        if (bump_analyzed_) queue_->on_analyzed_var(q.var());
        analyze_toclear_.push_back(q);
        if (trail_.level(q.var()) >= trail_.decision_level()) {
          ++path_count;
        } else {
          learnt.push_back(q);
        }
      } else if (config_.track_cdg) {
        // Root-level literal resolved away by its unit derivation.
        collect_reason_closure(q.var(), antecedents);
      }
    }

    // Next clause to resolve with: last seen trail literal.
    while (!seen_[static_cast<std::size_t>(
        trail_[static_cast<std::size_t>(index)].var())])
      --index;
    p = trail_[static_cast<std::size_t>(index)];
    --index;
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --path_count;
    if (path_count > 0) c = reason_clause(p);
  } while (path_count > 0);
  learnt[0] = ~p;

  // Recursive clause minimization: drop literals implied by the rest.
  std::uint32_t abstract = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i)
    abstract |= trail_.abstract_level(learnt[i].var());
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const Var v = learnt[i].var();
    if (trail_.reason(v) == kClauseRefUndef ||
        !lit_redundant(learnt[i], abstract, antecedents)) {
      learnt[kept++] = learnt[i];
    } else {
      ++stats_.minimized_literals;
    }
  }
  learnt.resize(kept);

  // Find the backjump level: maximal level among learnt[1..].
  int backjump = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (trail_.level(learnt[i].var()) > trail_.level(learnt[max_i].var()))
        max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    backjump = trail_.level(learnt[1].var());
  }

  for (const Lit l : analyze_toclear_)
    seen_[static_cast<std::size_t>(l.var())] = 0;
  analyze_toclear_.clear();
  clear_closure_marks();

  return backjump;
}

bool Solver::lit_redundant(Lit p, std::uint32_t abstract_levels,
                           std::vector<ClauseId>& antecedents) {
  // Checks whether ~p is implied by the other learnt literals through the
  // implication graph.  On success the reason clauses used become
  // antecedents of the learned clause; on failure all tentative marks and
  // antecedents are rolled back.
  std::vector<Lit> stack{p};
  const std::size_t toclear_top = analyze_toclear_.size();
  const std::size_t ants_top = antecedents.size();
  const std::size_t closure_top = closure_clear_.size();

  while (!stack.empty()) {
    const Lit q = stack.back();
    stack.pop_back();
    // q is false on the trail; its var's reason asserts ~q.
    const Clause c = reason_clause(~q);
    if (config_.track_cdg) antecedents.push_back(c.id());
    for (std::uint32_t k = 1; k < c.size(); ++k) {
      const Lit l = c[k];
      const auto v = static_cast<std::size_t>(l.var());
      if (seen_[v]) continue;
      if (trail_.level(l.var()) == 0) {
        if (config_.track_cdg) collect_reason_closure(l.var(), antecedents);
        continue;
      }
      if (trail_.reason(l.var()) != kClauseRefUndef &&
          (trail_.abstract_level(l.var()) & abstract_levels) != 0) {
        seen_[v] = 1;
        analyze_toclear_.push_back(l);
        stack.push_back(l);
      } else {
        // Not removable: roll back tentative state.
        for (std::size_t i = toclear_top; i < analyze_toclear_.size(); ++i)
          seen_[static_cast<std::size_t>(analyze_toclear_[i].var())] = 0;
        analyze_toclear_.resize(toclear_top);
        for (std::size_t i = closure_top; i < closure_clear_.size(); ++i)
          seen_closure_[static_cast<std::size_t>(closure_clear_[i])] = 0;
        closure_clear_.resize(closure_top);
        antecedents.resize(ants_top);
        return false;
      }
    }
  }
  return true;
}

void Solver::record_learned(const std::vector<Lit>& learnt, std::uint32_t lbd,
                            const std::vector<ClauseId>& antecedents) {
  const ClauseId id = db_.register_learned();
  ++stats_.learned_clauses;
  stats_.learned_literals += learnt.size();
  if (config_.track_cdg) cdg_.add_learned(id, antecedents);
  for (const Lit l : learnt) queue_->on_learned_literal(l);

  // Unit learned clauses are permanent root facts; they are not attached
  // (nothing to watch) and never deleted (unmanaged), but they do serve
  // as reasons, keeping the CDG complete.
  const bool managed = learnt.size() >= 2;
  const ClauseRef cref = db_.alloc_learned(learnt, id, lbd, managed);
  if (managed) prop_.attach(db_.arena(), cref);
  trail_.assign(learnt[0], cref);
}

void Solver::import_clause(std::span<const Lit> lits, std::uint32_t lbd) {
  if (!ok_) return;
  REFBMC_ASSERT(trail_.decision_level() == 0);
  // Root-simplify the foreign clause: a literal true at the root
  // satisfies it forever (skip), a literal false at the root can never
  // come back (drop).  Remaining literals are all unassigned.
  import_buf_.clear();
  for (const Lit l : lits) {
    REFBMC_EXPECTS_MSG(!l.is_undef() && l.var() < num_vars(),
                       "imported clause over unknown variable");
    const lbool v = value(l);
    if (v == l_True) return;
    if (v == l_False) continue;
    import_buf_.push_back(l);
  }
  // Defensive dedup (a well-behaved exchange sends learnts, which have
  // neither duplicates nor complementary pairs — but the watcher
  // invariants must not hinge on the peer's good manners).
  std::sort(import_buf_.begin(), import_buf_.end());
  import_buf_.erase(std::unique(import_buf_.begin(), import_buf_.end()),
                    import_buf_.end());
  for (std::size_t i = 0; i + 1 < import_buf_.size(); ++i)
    if (import_buf_[i].var() == import_buf_[i + 1].var()) return;  // taut

  ++stats_.clauses_imported;
  const ClauseId id = db_.register_learned();
  // The clause was derived remotely: its antecedents are unknown here, so
  // it enters the dependency graph as an edge-less node.  Cores extracted
  // from a sharing solver are therefore relative to the imported lemmas
  // (which are themselves implied by the shared formula).
  if (config_.track_cdg) cdg_.add_learned(id, {});

  if (import_buf_.empty()) {
    ok_ = false;
    if (config_.track_cdg) cdg_.set_final_conflict({id});
    return;
  }
  // Tier the import like a local learnt; the LBD travelled with the
  // clause, clamped to its (possibly root-shortened) size.
  const std::uint32_t eff_lbd =
      std::min(std::max(lbd, 1u),
               static_cast<std::uint32_t>(import_buf_.size()));
  const bool managed = import_buf_.size() >= 2;
  const ClauseRef cref = db_.alloc_learned(import_buf_, id, eff_lbd, managed);
  if (managed)
    prop_.attach(db_.arena(), cref);
  else
    trail_.assign(import_buf_[0], cref);  // root fact, reason kept for CDG
}

bool Solver::import_shared_clauses() {
  if (exchange_ == nullptr || !ok_) return ok_;
  if (!exchange_->has_pending()) return ok_;  // one relaxed load, hot case
  REFBMC_ASSERT(trail_.decision_level() == 0);

  // Import latency covers the whole batch: drain, attach, re-propagate.
  // Conflicting batches (the solve ends here) are deliberately unmeasured;
  // they are a verdict, not a latency.
  const bool observed = obs::trace_active() || obs::metrics_active();
  const std::uint64_t t0 = observed ? obs::monotonic_now_us() : 0;
  const std::uint64_t imported_before = stats_.clauses_imported;

  // Drain BCP the formula already queued (a freshly replayed instance
  // arrives with its root units unpropagated): those propagations belong
  // to ordinary solving, and must not be billed to the imports below.
  {
    const ClauseRef confl = propagate();
    if (confl != kClauseRefUndef) {
      ++stats_.conflicts;
      if (config_.track_cdg) analyze_final_conflict(confl);
      ok_ = false;
      return false;
    }
  }

  struct Adapter final : ClauseExchange::ImportSink {
    Solver& solver;
    explicit Adapter(Solver& s) : solver(s) {}
    void add(std::span<const Lit> lits, std::uint32_t lbd) override {
      solver.import_clause(lits, lbd);
    }
  } adapter{*this};

  const std::uint64_t props_before = stats_.propagations;
  exchange_->import_clauses(adapter);
  if (ok_) {
    const ClauseRef confl = propagate();
    if (confl != kClauseRefUndef) {
      ++stats_.conflicts;
      if (config_.track_cdg) analyze_final_conflict(confl);
      ok_ = false;
    }
  }
  stats_.import_propagations += stats_.propagations - props_before;
  if (observed && ok_) {
    const std::uint64_t dur = obs::monotonic_now_us() - t0;
    if (obs::trace_active())
      obs::trace_record_span(
          obs::EventKind::ImportBatch, t0, dur, /*depth=*/-1,
          static_cast<std::int64_t>(stats_.clauses_imported -
                                    imported_before));
    if (obs::metrics_active()) {
      obs::metrics().histogram("sat.import_us").observe(dur);
      obs::metrics().counter("sat.import_batches").add(1);
    }
  }
  return ok_;
}

void Solver::poll_rank_refresh() {
  if (rank_refresh_ == nullptr || !rank_refresh_->has_update()) return;
  REFBMC_ASSERT(trail_.decision_level() == 0);
  const std::span<const double> ranks = rank_refresh_->refresh();
  REFBMC_EXPECTS(ranks.size() <= static_cast<std::size_t>(num_vars()));
  queue_->refresh_ranks(ranks);
  ++stats_.rank_refreshes;
}

void Solver::register_frame_guard(Var v) {
  REFBMC_EXPECTS(v >= 0 && v < num_vars());
  if (guard_state_.size() < static_cast<std::size_t>(num_vars()))
    guard_state_.resize(static_cast<std::size_t>(num_vars()), 0);
  guard_state_[static_cast<std::size_t>(v)] = 1;
}

bool Solver::retire_frame_guards(const std::vector<Lit>& guards) {
  if (guards.empty()) return ok_;
  backtrack(0);
  for (const Lit g : guards) {
    const auto v = static_cast<std::size_t>(g.var());
    REFBMC_EXPECTS_MSG(v < guard_state_.size() && guard_state_[v] == 1,
                       "retiring an unregistered or already dead guard");
    guard_state_[v] = 2;
    add_clause({~g});
    if (!ok_) return false;
  }
  // The retirement units are now root facts: every clause satisfied by a
  // dead guard is permanently satisfied and can be dropped wholesale —
  // the one route by which a retired frame's clauses ever leave the
  // arena in an incremental session.
  stats_.retired_frame_clauses +=
      db_.retire_root_satisfied(trail_, prop_, guard_state_);
  db_.garbage_collect_if_needed(trail_, prop_, stats_);
  return ok_;
}

std::int64_t Solver::luby(std::int64_t x) {
  // Luby sequence 1,1,2,1,1,2,4,... at 0-based index x (MiniSat's scheme:
  // find the finite subsequence containing x, then recurse into it).
  std::int64_t size = 1;
  std::int64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x = x % size;
  }
  return 1ll << seq;
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  Timer timer;
  assumptions_ = assumptions;
  last_assumptions_ = assumptions;
  for (const Lit a : assumptions_)
    REFBMC_EXPECTS_MSG(!a.is_undef() && a.var() < num_vars(),
                       "assumption over unknown variable");
  queue_->reset_switch();
  stats_.rank_switched = false;
  solved_unsat_ = false;

  if (!ok_) {
    stats_.solve_time_sec += timer.elapsed_sec();
    solved_unsat_ = true;
    return Result::Unsat;
  }
  if (stop_requested()) {
    // Pre-cancelled: give the verdict-less answer without exploring.
    stats_.solve_time_sec += timer.elapsed_sec();
    return Result::Unknown;
  }

  const Deadline deadline(config_.time_limit_sec);
  const std::int64_t conflicts_at_solve_start =
      static_cast<std::int64_t>(stats_.conflicts);
  std::int64_t restart_budget =
      config_.enable_restarts
          ? config_.restart_base * luby(static_cast<std::int64_t>(stats_.restarts))
          : -1;
  std::int64_t conflicts_this_restart = 0;
  std::int64_t reduce_limit =
      config_.reduce_base + static_cast<std::int64_t>(db_.num_learned());

  std::vector<Lit> learnt;
  std::vector<ClauseId> antecedents;

  // Export events are batched at decision-level-0 boundaries (restarts and
  // solve end): one event per batch with value = clauses exported since the
  // previous boundary, so tracing never touches the per-conflict path.
  std::uint64_t exported_mark = stats_.clauses_exported;
  const auto note_export_batch = [&] {
    if (!obs::trace_active() || stats_.clauses_exported == exported_mark)
      return;
    obs::trace_record(
        obs::EventKind::ExportBatch, /*depth=*/-1,
        static_cast<std::int64_t>(stats_.clauses_exported - exported_mark));
    exported_mark = stats_.clauses_exported;
  };

  const auto finish = [&](Result r) {
    note_export_batch();
    if (config_.assumption_savepoint && ok_) {
      // Keep the assumption prefix assigned (decisions and placeholders
      // for levels 1..keep map to assumptions_[0..keep-1]); the next
      // solve() resumes from the longest common prefix instead of
      // re-deciding and re-propagating every frame guard.
      const int keep = std::min(trail_.decision_level(),
                                static_cast<int>(assumptions_.size()));
      backtrack(keep);
      savepoint_assumptions_ = assumptions_;
      savepoint_levels_ = keep;
    } else {
      backtrack(0);
      savepoint_assumptions_.clear();
      savepoint_levels_ = 0;
    }
    assumptions_.clear();
    stats_.solve_time_sec += timer.elapsed_sec();
    return r;
  };

  if (config_.assumption_savepoint) {
    // Resume from the longest common prefix of the kept assumption
    // levels.  Pending cross-thread work (clause import, rank refresh)
    // needs the root, so it forces a miss.
    int lcp = 0;
    const int reusable = std::min(
        {savepoint_levels_, trail_.decision_level(),
         static_cast<int>(assumptions_.size())});
    while (lcp < reusable &&
           assumptions_[static_cast<std::size_t>(lcp)] ==
               savepoint_assumptions_[static_cast<std::size_t>(lcp)])
      ++lcp;
    if ((exchange_ != nullptr && exchange_->has_pending()) ||
        (rank_refresh_ != nullptr && rank_refresh_->has_update()))
      lcp = 0;
    backtrack(lcp);
    if (lcp > 0) {
      ++stats_.savepoint_hits;
      stats_.savepoint_levels_reused += static_cast<std::uint64_t>(lcp);
    } else {
      ++stats_.savepoint_misses;
    }
  }

  // Foreign lemmas first: a solve() starting at decision level 0 is the
  // one place imported clauses can be attached and root-propagated
  // safely.  A savepoint resume skips the boundary (the LCP was forced
  // to 0 above whenever either feed had pending work).
  if (trail_.decision_level() == 0) {
    if (!import_shared_clauses()) {
      solved_unsat_ = true;
      return finish(Result::Unsat);
    }
    // Shared-ordering refresh rides the same boundary: rivals may have
    // published cores since this solver's rank was projected.
    poll_rank_refresh();
  }

  while (true) {
    const ClauseRef confl = propagate();
    if (confl != kClauseRefUndef) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (trail_.decision_level() == 0) {
        if (config_.track_cdg) analyze_final_conflict(confl);
        ok_ = false;
        solved_unsat_ = true;
        return finish(Result::Unsat);
      }
      const int backjump = analyze(confl, learnt, antecedents);
      // LBD against the pre-backjump levels: the tier key of the new
      // clause (asserting literal's new level is not assigned yet).
      const std::uint32_t lbd = db_.compute_lbd(learnt, trail_);
      backtrack(backjump);
      record_learned(learnt, lbd, antecedents);
      // Lemma export (portfolio sharing): short or low-LBD clauses are
      // the ones worth re-deriving nowhere else.  Counted only when the
      // exchange accepts (it may refuse clauses over unshared variables).
      if (exchange_ != nullptr &&
          (lbd <= static_cast<std::uint32_t>(config_.share_lbd) ||
           learnt.size() <= static_cast<std::size_t>(config_.share_size))) {
        if (exchange_->export_clause(learnt, lbd)) ++stats_.clauses_exported;
      }
      db_.decay_activity();
      queue_->on_conflict();

      // Resource limits and cancellation, checked at conflicts for low
      // overhead (a relaxed atomic load per conflict is noise next to BCP).
      if (stop_requested() ||
          (config_.conflict_limit >= 0 &&
           static_cast<std::int64_t>(stats_.conflicts) -
                   conflicts_at_solve_start >=
               config_.conflict_limit) ||
          ((stats_.conflicts & 127) == 0 &&
           (deadline.expired() || (config_.mem_tracker != nullptr &&
                                   config_.mem_tracker->breached())))) {
        return finish(Result::Unknown);
      }
      continue;
    }

    // No conflict: restart / reduce / decide.
    if (restart_budget >= 0 && conflicts_this_restart >= restart_budget) {
      if (stop_requested()) return finish(Result::Unknown);
      ++stats_.restarts;
      REFBMC_TRACE_EVENT(obs::EventKind::Restart, -1,
                         static_cast<std::int64_t>(stats_.restarts));
      note_export_batch();
      conflicts_this_restart = 0;
      restart_budget = config_.restart_base *
                       luby(static_cast<std::int64_t>(stats_.restarts));
      // Savepoint: restart only down to the assumption prefix unless
      // root-level work is pending (clause import, rank refresh, a due
      // vivification pass).  The partial restart still counts toward the
      // vivification cadence so the interval is honored exactly.
      const bool need_root =
          !config_.assumption_savepoint ||
          (exchange_ != nullptr && exchange_->has_pending()) ||
          (rank_refresh_ != nullptr && rank_refresh_->has_update()) ||
          inprocess_due();
      if (!need_root) {
        backtrack(std::min(trail_.decision_level(),
                           static_cast<int>(assumptions_.size())));
        if (config_.inprocess.vivify_interval > 0) ++restarts_since_vivify_;
        continue;
      }
      backtrack(0);
      // Restart = decision-level-zero boundary: the import point where
      // foreign lemmas learned since the last visit are integrated, and
      // where a shared-ordering refresh may re-key the decision heap.
      if (!import_shared_clauses()) {
        solved_unsat_ = true;
        return finish(Result::Unsat);
      }
      poll_rank_refresh();
      // Same seam, third consumer: periodic clause vivification (and an
      // arena-GC opportunity) once the imported lemmas and refreshed
      // ranks are in place.
      if (!inprocess_at_restart()) {
        solved_unsat_ = true;
        return finish(Result::Unsat);
      }
      continue;
    }
    if (config_.enable_reduce_db &&
        static_cast<std::int64_t>(db_.num_learned()) >= reduce_limit) {
      REFBMC_TRACE_EVENT(obs::EventKind::ReduceDb, -1,
                         static_cast<std::int64_t>(db_.num_learned()));
      db_.reduce(trail_, prop_, /*strengthen=*/!config_.track_cdg, stats_);
      reduce_limit =
          static_cast<std::int64_t>(static_cast<double>(reduce_limit) *
                                    config_.reduce_grow);
    }

    // Assumption decisions come first, in order, one level each.
    Lit next = kLitUndef;
    while (trail_.decision_level() <
           static_cast<int>(assumptions_.size())) {
      const Lit a =
          assumptions_[static_cast<std::size_t>(trail_.decision_level())];
      if (value(a) == l_True) {
        trail_.new_decision_level();  // placeholder keeps indices aligned
      } else if (value(a) == l_False) {
        // The formula (plus earlier assumptions) refutes this assumption.
        if (config_.track_cdg) analyze_assumption_refutation(a);
        solved_unsat_ = true;
        return finish(Result::Unsat);
      } else {
        next = a;
        break;
      }
    }

    if (next == kLitUndef) {
      next = queue_->pick_branch(trail_);
      if (next == kLitUndef) {
        // All variables assigned: model found.
        model_ = trail_.assignments();
        return finish(Result::Sat);
      }
    }
    ++stats_.decisions;
    // Long conflict-free decision runs (easy SAT instances) still need to
    // observe cancellation and the deadline.  `next` was already popped
    // off the decision heap; put it back or it would be lost to every
    // later solve() on this solver.
    if ((stats_.decisions & 255) == 0 &&
        (stop_requested() || deadline.expired() ||
         (config_.mem_tracker != nullptr &&
          config_.mem_tracker->breached()))) {
      queue_->insert(next.var());
      return finish(Result::Unknown);
    }
    if (queue_->on_decision(stats_.decisions, db_.num_original_literals(),
                            config_.dynamic_switch_divisor)) {
      stats_.rank_switched = true;
      REFBMC_TRACE_EVENT(obs::EventKind::DynamicFallback, -1,
                         static_cast<std::int64_t>(stats_.decisions));
    }
    trail_.new_decision_level();
    trail_.assign(next, kClauseRefUndef);
  }
}

lbool Solver::model_value(Var v) const {
  REFBMC_EXPECTS_MSG(!model_.empty(), "no model (last solve was not SAT)");
  REFBMC_EXPECTS(v >= 0 && static_cast<std::size_t>(v) < model_.size());
  return model_[static_cast<std::size_t>(v)];
}

std::vector<ClauseId> Solver::unsat_core() const {
  REFBMC_EXPECTS_MSG(solved_unsat_, "unsat core requires an UNSAT result");
  REFBMC_EXPECTS_MSG(config_.track_cdg,
                     "unsat core requires track_cdg = true");
  return cdg_.original_core();
}

std::vector<Var> Solver::unsat_core_vars() const {
  const std::vector<ClauseId> core = unsat_core();
  std::vector<bool> in(static_cast<std::size_t>(num_vars()), false);
  for (const ClauseId id : core)
    for (const Lit l : original_clause(id))
      in[static_cast<std::size_t>(l.var())] = true;
  std::vector<Var> vars;
  for (Var v = 0; v < num_vars(); ++v)
    if (in[static_cast<std::size_t>(v)]) vars.push_back(v);
  return vars;
}

}  // namespace refbmc::sat
