// Trail: the assignment stack of the CDCL core.
//
// Owns everything per-variable that describes the current partial
// assignment — value, decision level, reason clause — plus the assignment
// stack itself, the decision-level frames, the propagation queue head,
// and (optionally) saved phases.  The Propagator consumes the queue, the
// Solver drives decisions and backtracking; neither owns assignment
// state.
//
// Backtracking (`cancel_until`) takes a callback so the owner can observe
// every unassigned variable (the Solver re-inserts it into the
// DecisionQueue) without the Trail depending on the decision layer.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/clause.hpp"
#include "sat/types.hpp"
#include "util/assert.hpp"

namespace refbmc::sat {

class Trail {
 public:
  /// When true, cancel_until records each unassigned variable's polarity
  /// so the decision layer can re-decide it the same way.
  explicit Trail(bool phase_saving = false) : phase_saving_(phase_saving) {}

  // ---- variables -----------------------------------------------------
  Var new_var() {
    const Var v = num_vars();
    assigns_.push_back(l_Undef);
    level_.push_back(0);
    reason_.push_back(kClauseRefUndef);
    saved_phase_.push_back(0);
    return v;
  }
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  lbool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  lbool value(Lit l) const { return value(l.var()) ^ l.negated(); }
  int level(Var v) const { return level_[static_cast<std::size_t>(v)]; }
  ClauseRef reason(Var v) const {
    return reason_[static_cast<std::size_t>(v)];
  }
  void set_reason(Var v, ClauseRef r) {
    reason_[static_cast<std::size_t>(v)] = r;
  }

  /// 1 << (level(v) & 31): the level signature used by recursive clause
  /// minimization.
  std::uint32_t abstract_level(Var v) const {
    return 1u << (static_cast<std::uint32_t>(level(v)) & 31u);
  }

  // ---- decision levels -----------------------------------------------
  int decision_level() const { return static_cast<int>(lim_.size()); }
  void new_decision_level() {
    lim_.push_back(static_cast<int>(trail_.size()));
  }

  // ---- assignment stack ----------------------------------------------
  /// Appends the assignment l (with its implying clause, or
  /// kClauseRefUndef for decisions/assumptions) at the current level.
  /// The literal enters the propagation queue.
  void assign(Lit l, ClauseRef reason) {
    REFBMC_ASSERT(value(l) == l_Undef);
    const auto v = static_cast<std::size_t>(l.var());
    assigns_[v] = lbool(!l.negated());
    level_[v] = decision_level();
    reason_[v] = reason;
    trail_.push_back(l);
  }

  std::size_t size() const { return trail_.size(); }
  Lit operator[](std::size_t i) const { return trail_[i]; }

  // ---- propagation queue ---------------------------------------------
  bool fully_propagated() const {
    return qhead_ == static_cast<int>(trail_.size());
  }
  Lit dequeue() { return trail_[static_cast<std::size_t>(qhead_++)]; }
  /// Discards the rest of the queue (conflict found: analysis restarts
  /// propagation after backtracking anyway).
  void flush_queue() { qhead_ = static_cast<int>(trail_.size()); }

  // ---- backtracking --------------------------------------------------
  /// Undoes all assignments above `level`; calls `on_unassign(v)` for
  /// each variable as it becomes free (most recent first).
  template <typename OnUnassign>
  void cancel_until(int level, OnUnassign&& on_unassign) {
    if (decision_level() <= level) return;
    const int bound = lim_[static_cast<std::size_t>(level)];
    for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
      const auto v =
          static_cast<std::size_t>(trail_[static_cast<std::size_t>(i)].var());
      if (phase_saving_)
        saved_phase_[v] = assigns_[v] == l_True ? 1 : 2;
      assigns_[v] = l_Undef;
      reason_[v] = kClauseRefUndef;
      on_unassign(static_cast<Var>(v));
    }
    trail_.resize(static_cast<std::size_t>(bound));
    lim_.resize(static_cast<std::size_t>(level));
    if (qhead_ > bound) qhead_ = bound;
  }

  /// Saved polarity of v: l_Undef when never assigned (or saving off).
  lbool saved_phase(Var v) const {
    const char s = saved_phase_[static_cast<std::size_t>(v)];
    return s == 0 ? l_Undef : s == 1 ? l_True : l_False;
  }

  /// Snapshot of the assignment vector (the model, when complete).
  const std::vector<lbool>& assignments() const { return assigns_; }

  /// Patches every reason reference through an arena relocation map
  /// (sorted by old ref); reasons of unassigned variables are dropped.
  void relocate_reasons(
      const std::vector<std::pair<ClauseRef, ClauseRef>>& map);

 private:
  bool phase_saving_;
  std::vector<lbool> assigns_;     // per var
  std::vector<int> level_;         // per var
  std::vector<ClauseRef> reason_;  // per var
  std::vector<char> saved_phase_;  // per var: 0 none, 1 true, 2 false
  std::vector<Lit> trail_;
  std::vector<int> lim_;  // trail size at each decision level start
  int qhead_ = 0;
};

/// Looks `cref` up in a relocation map sorted by old reference (the order
/// ClauseArena::garbage_collect emits).
ClauseRef relocate_ref(
    ClauseRef cref,
    const std::vector<std::pair<ClauseRef, ClauseRef>>& map);

}  // namespace refbmc::sat
