#include "sat/core_verify.hpp"

#include "util/assert.hpp"

namespace refbmc::sat {

CoreCheck verify_core(const std::vector<std::vector<Lit>>& all_clauses,
                      int num_vars, const std::vector<ClauseId>& core_ids) {
  CoreCheck check;
  check.total_clauses = all_clauses.size();
  check.core_clauses = core_ids.size();

  SolverConfig cfg;
  cfg.track_cdg = false;  // plain re-solve, no need for a nested core
  Solver sub(cfg);
  for (int v = 0; v < num_vars; ++v) sub.new_var();

  std::vector<bool> var_in_core(static_cast<std::size_t>(num_vars), false);
  for (const ClauseId id : core_ids) {
    REFBMC_EXPECTS(id >= 1 && id <= all_clauses.size());
    const auto& clause = all_clauses[id - 1];
    for (const Lit l : clause)
      var_in_core[static_cast<std::size_t>(l.var())] = true;
    sub.add_clause(clause);
  }
  for (const bool b : var_in_core) check.core_vars += b ? 1 : 0;

  check.core_unsat = (sub.solve() == Result::Unsat);
  return check;
}

CoreCheck verify_core(const Solver& solver) {
  // Re-solve exactly the core clauses.  Clause ids may be non-dense under
  // incremental use, so pull the literals through original_clause().
  CoreCheck check;
  check.total_clauses = solver.num_original_clauses();
  const std::vector<ClauseId> core = solver.unsat_core();
  check.core_clauses = core.size();

  SolverConfig cfg;
  cfg.track_cdg = false;
  Solver sub(cfg);
  for (int v = 0; v < solver.num_vars(); ++v) sub.new_var();
  std::vector<bool> var_in_core(static_cast<std::size_t>(solver.num_vars()),
                                false);
  for (const ClauseId id : core) {
    const auto& clause = solver.original_clause(id);
    for (const Lit l : clause)
      var_in_core[static_cast<std::size_t>(l.var())] = true;
    sub.add_clause(clause);
  }
  for (const bool b : var_in_core) check.core_vars += b ? 1 : 0;
  // Assumption-relative cores certify core ∧ assumptions ⊨ ⊥.
  for (const Lit a : solver.last_assumptions()) sub.add_clause({a});
  check.core_unsat = (sub.solve() == Result::Unsat);
  return check;
}

}  // namespace refbmc::sat
