#include "sat/clausedb.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace refbmc::sat {

ClauseId ClauseDB::register_original(const std::vector<Lit>& dedup_lits,
                                     bool counted) {
  const ClauseId id = ++last_id_;
  id_is_original_.push_back(1);
  original_ids_.push_back(id);
  lits_by_id_.push_back(dedup_lits);
  if (counted) num_orig_lits_ += dedup_lits.size();
  return id;
}

ClauseId ClauseDB::register_learned() {
  const ClauseId id = ++last_id_;
  id_is_original_.push_back(0);
  lits_by_id_.emplace_back();  // placeholder: learned lits live in the arena
  return id;
}

ClauseRef ClauseDB::alloc_learned(const std::vector<Lit>& lits, ClauseId id,
                                  std::uint32_t lbd, bool managed) {
  const ClauseRef cref = arena_.alloc(lits, id, /*learnt=*/true);
  Clause c = arena_.get(cref);
  c.set_lbd(lbd);
  c.set_activity(static_cast<float>(cla_inc_));
  if (managed) learned_.push_back(cref);
  return cref;
}

void ClauseDB::on_used_in_analysis(Clause c, std::uint32_t current_lbd) {
  if (current_lbd > 0 && current_lbd < c.lbd()) c.set_lbd(current_lbd);
  c.set_activity(c.activity() + static_cast<float>(cla_inc_));
  if (c.activity() > 1e20f) {
    for (const ClauseRef cref : learned_) {
      Clause lc = arena_.get(cref);
      lc.set_activity(lc.activity() * 1e-20f);
    }
    cla_inc_ *= 1e-20;
  }
}

std::uint32_t ClauseDB::compute_lbd(const std::vector<Lit>& lits,
                                    const Trail& trail) const {
  ++stamp_gen_;
  std::uint32_t count = 0;
  for (const Lit l : lits) {
    const auto lev = static_cast<std::size_t>(trail.level(l.var()));
    if (lev == 0) continue;
    if (lev >= level_stamp_.size()) level_stamp_.resize(lev + 1, 0);
    if (level_stamp_[lev] != stamp_gen_) {
      level_stamp_[lev] = stamp_gen_;
      ++count;
    }
  }
  return count;
}

std::uint32_t ClauseDB::compute_lbd_capped(const Clause& c, const Trail& trail,
                                           std::uint32_t cap) const {
  ++stamp_gen_;
  std::uint32_t count = 0;
  for (std::uint32_t k = 0; k < c.size(); ++k) {
    const auto lev = static_cast<std::size_t>(trail.level(c[k].var()));
    if (lev == 0) continue;
    if (lev >= level_stamp_.size()) level_stamp_.resize(lev + 1, 0);
    if (level_stamp_[lev] != stamp_gen_) {
      level_stamp_[lev] = stamp_gen_;
      if (++count >= cap) return cap;  // cannot improve: stop walking
    }
  }
  return count;
}

void ClauseDB::remove_learned(ClauseRef cref) {
  const auto it = std::find(learned_.begin(), learned_.end(), cref);
  REFBMC_ASSERT(it != learned_.end());
  learned_.erase(it);
  arena_.free_clause(cref);
}

bool ClauseDB::clause_locked(ClauseRef cref, const Trail& trail) const {
  const Clause c = arena_.get(cref);
  const Var v = c[0].var();
  return trail.reason(v) == cref && trail.value(c[0]) == l_True;
}

void ClauseDB::strengthen_learned(ClauseRef cref, Trail& trail,
                                  Propagator& propagator,
                                  SolverStats& stats) {
  // Drops tail literals that are false at decision level 0 — permanently
  // false, so removal is sound at any current level.  The watched
  // positions 0/1 are left alone (watch invariants stay intact; a false
  // watch of a satisfied/propagating clause is legal and rare).
  Clause c = arena_.get(cref);
  std::uint32_t i = 2;
  std::uint32_t n = c.size();
  while (i < n) {
    const Lit l = c[i];
    if (trail.value(l) == l_False && trail.level(l.var()) == 0) {
      c.swap_lits(i, n - 1);
      --n;
    } else {
      ++i;
    }
  }
  if (n < c.size()) {
    stats.strengthened_literals += c.size() - n;
    arena_.shrink_clause(cref, n);
    propagator.on_clause_shrunk(arena_, cref);
  }
}

void ClauseDB::reduce(Trail& trail, Propagator& propagator, bool strengthen,
                      SolverStats& stats) {
  ++stats.reduce_db_runs;

  // Split the learned list: protected clauses (glue tier, binary, locked)
  // survive unconditionally; the rest are deletion candidates.
  std::vector<ClauseRef> kept;
  std::vector<ClauseRef> candidates;
  kept.reserve(learned_.size());
  for (const ClauseRef cref : learned_) {
    const Clause c = arena_.get(cref);
    if (c.lbd() <= glue_lbd_) {
      ++stats.glue_protected;
      kept.push_back(cref);
    } else if (c.size() <= 2 || clause_locked(cref, trail)) {
      kept.push_back(cref);
    } else {
      candidates.push_back(cref);
    }
  }

  // Worst-first: the whole local tier (lbd > tier_lbd) goes before the
  // mid tier; within a tier, activity decides (LBD as tiebreak) — on
  // formulas where every clause looks alike LBD carries no signal, and
  // recency-of-use must keep ruling there.  The clause ref breaks final
  // ties for determinism.
  std::sort(candidates.begin(), candidates.end(),
            [this](ClauseRef a, ClauseRef b) {
              const Clause ca = arena_.get(a);
              const Clause cb = arena_.get(b);
              const bool la = ca.lbd() > tier_lbd_;
              const bool lb = cb.lbd() > tier_lbd_;
              if (la != lb) return la;
              if (ca.activity() != cb.activity())
                return ca.activity() < cb.activity();
              if (ca.lbd() != cb.lbd()) return ca.lbd() > cb.lbd();
              return a < b;
            });

  // Aim at half of the whole learned list (the classic reduceDB volume);
  // protections cap what is actually deletable.
  const std::size_t target = std::min(candidates.size(), learned_.size() / 2);
  std::size_t removed = 0;
  for (const ClauseRef cref : candidates) {
    if (removed < target) {
      propagator.detach(arena_, cref);
      arena_.free_clause(cref);
      ++removed;
    } else {
      kept.push_back(cref);
    }
  }
  stats.deleted_clauses += removed;

  if (strengthen)
    for (const ClauseRef cref : kept)
      strengthen_learned(cref, trail, propagator, stats);

  learned_ = std::move(kept);
  garbage_collect_if_needed(trail, propagator, stats);
}

std::uint64_t ClauseDB::retire_root_satisfied(
    Trail& trail, Propagator& propagator,
    const std::vector<char>& guard_state) {
  std::vector<ClauseRef> doomed_learned;
  std::uint64_t retired = 0;
  arena_.for_each_live([&](ClauseRef cref, Clause c) {
    bool satisfied_by_dead = false;
    for (std::uint32_t k = 0; k < c.size(); ++k) {
      const Lit l = c[k];
      const auto v = static_cast<std::size_t>(l.var());
      if (v >= guard_state.size() || guard_state[v] != 2) continue;
      if (trail.value(l) == l_True && trail.level(l.var()) == 0) {
        satisfied_by_dead = true;
        break;
      }
    }
    if (!satisfied_by_dead) return;
    // Reasons of current root assignments stay — the retirement unit
    // itself, and anything a dead guard helped propagate at the root —
    // so the trail and the CDG keep their anchors.  Long clauses assert
    // through position 0; inlined binaries through either watch.
    const std::uint32_t reason_positions = c.size() >= 2 ? 2u : 1u;
    for (std::uint32_t k = 0; k < reason_positions; ++k) {
      if (trail.reason(c[k].var()) == cref && trail.value(c[k]) == l_True)
        return;
    }
    if (c.size() >= 2 && propagator.is_attached(arena_, cref))
      propagator.detach(arena_, cref);
    if (c.learnt()) doomed_learned.push_back(cref);
    arena_.free_clause(cref);
    ++retired;
  });
  if (!doomed_learned.empty()) {
    std::sort(doomed_learned.begin(), doomed_learned.end());
    learned_.erase(
        std::remove_if(learned_.begin(), learned_.end(),
                       [&](ClauseRef cref) {
                         return std::binary_search(doomed_learned.begin(),
                                                   doomed_learned.end(),
                                                   cref);
                       }),
        learned_.end());
  }
  return retired;
}

void ClauseDB::garbage_collect_if_needed(Trail& trail,
                                         Propagator& propagator,
                                         SolverStats& stats) {
  if (!arena_.should_collect()) return;
  ++stats.arena_gcs;
  const bool observed = obs::metrics_active();
  const std::uint64_t t0 = observed ? obs::monotonic_now_us() : 0;
  std::vector<std::pair<ClauseRef, ClauseRef>> map;
  arena_.garbage_collect(map);  // map is sorted by old ref (scan order)
  propagator.relocate(map);
  trail.relocate_reasons(map);
  for (auto& cref : learned_) cref = relocate_ref(cref, map);
  if (observed)
    obs::metrics().histogram("arena.gc_pause_us")
        .observe(obs::monotonic_now_us() - t0);
}

}  // namespace refbmc::sat
