// Lightweight contract checks used across the library.
//
// REFBMC_ASSERT is an internal invariant check: it aborts with a message in
// all build types (the solver's correctness argument depends on them, and
// the cost is negligible next to BCP).  REFBMC_EXPECTS documents a
// precondition on a public API and throws std::invalid_argument so callers
// can test misuse without dying.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace refbmc {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "refbmc assertion failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw std::logic_error(os.str());
}

[[noreturn]] inline void precondition_fail(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "refbmc precondition violated: " << expr << " at " << file << ":"
     << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw std::invalid_argument(os.str());
}

}  // namespace refbmc

#define REFBMC_ASSERT(expr)                                          \
  do {                                                               \
    if (!(expr)) ::refbmc::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define REFBMC_ASSERT_MSG(expr, msg)                                   \
  do {                                                                 \
    if (!(expr)) ::refbmc::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#define REFBMC_EXPECTS(expr)                                                 \
  do {                                                                       \
    if (!(expr)) ::refbmc::precondition_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define REFBMC_EXPECTS_MSG(expr, msg)                                 \
  do {                                                                \
    if (!(expr))                                                      \
      ::refbmc::precondition_fail(#expr, __FILE__, __LINE__, msg);    \
  } while (0)
