// Tiny command-line option parser for examples and benches.
//
// Supports `--name value`, `--name=value` and boolean flags `--name`.
// Unrecognized arguments are collected as positionals.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace refbmc {

class Options {
 public:
  Options() = default;

  /// Parses argv; throws std::invalid_argument on malformed input
  /// (e.g. trailing `--name` where a value was required via has()).
  static Options parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def = "") const;
  int get_int(const std::string& name, int def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace refbmc
