// Tiny command-line option parser for examples and benches, plus the
// CLI-level portfolio configuration shared by the portfolio example,
// bench and tests.
//
// Supports `--name value`, `--name=value` and boolean flags `--name`.
// Unrecognized arguments are collected as positionals.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace refbmc {

class Options {
 public:
  Options() = default;

  /// Parses argv; throws std::invalid_argument on malformed input
  /// (e.g. trailing `--name` where a value was required via has()).
  static Options parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def = "") const;
  int get_int(const std::string& name, int def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

/// Splits a comma-separated list, dropping empty items ("a,,b" → {a, b}).
std::vector<std::string> split_csv(const std::string& csv);

/// Portfolio scheduler knobs at the CLI level.  Policies are kept as
/// names (util cannot depend on bmc); the portfolio layer resolves them
/// to OrderingPolicy values and rejects unknown names there.
struct PortfolioConfig {
  int num_threads = 4;
  std::vector<std::string> policies{"baseline", "static", "dynamic",
                                    "shtrichman", "evsids"};
  int max_depth = 20;
  double budget_sec = -1.0;  // wall-clock budget per race / batch (<=0: none)
  std::uint64_t seed = 1;    // base RNG seed; worker w uses seed + w
  bool incremental = false;  // per-job incremental SAT mode
  bool simplify = true;      // frame-wise formula simplification
  /// Solver-core knobs, kept as strings/ints at the CLI level (util
  /// cannot depend on sat); the portfolio layer resolves and validates.
  std::string decision = "chaff";  // decision scorer: chaff | evsids
  int glue_lbd = 2;   // learned clauses at or below this LBD never deleted
  int tier_lbd = 6;   // mid-tier LBD boundary of reduceDB
  /// Portfolio lemma sharing (clause exchange between racing solvers /
  /// shard groups on the same formula).  `--share off` restores fully
  /// independent solvers, bit for bit.
  bool share = true;       // --share on|off
  int share_lbd = 4;       // export learnts with lbd <= this ...
  int share_size = 2;      // ... or size <= this
  int share_cap = 4096;    // pool ring capacity, in clauses
  /// Portfolio ordering sharing (one race-wide rank accumulation fed by
  /// every entrant's unsat cores, refreshed mid-solve).  `--share-rank
  /// off` restores engine-private core rankings, bit for bit.  The
  /// default adapts to the hardware: on a single-hardware-thread host the
  /// racing entrants timeslice, so mid-solve refreshes only add epoch
  /// polling overhead — the default flips to off there (explicit
  /// `--share-rank on` still wins).
  bool share_rank = true;  // --share-rank on|off (default is hw-adaptive)
  /// Tape preprocessing (PR 7): bounded variable elimination, subsumption
  /// and self-subsuming resolution over the encoded formula, run once per
  /// depth race-wide, plus clause vivification inside the solver at
  /// restart boundaries.  `--preprocess off` restores the unsimplified
  /// pipeline bit for bit (and disables vivification with it).
  bool preprocess = true;   // --preprocess on|off
  int bve_budget = 16;      // --bve-budget: max occurrences of an elim var
  int vivify_interval = 8;  // --vivify-interval: restarts between passes
  /// True when the user set --vivify-interval explicitly; the scheduler
  /// uses it to log (instead of silently dropping) a request that another
  /// knob overrides.
  bool vivify_interval_set = false;
  /// Incremental-session fast path (PR 8): successive solve() calls
  /// resume from the longest common assumption prefix instead of the
  /// root, and frame retirements are batched through an arena sweep.
  /// `--assumption-savepoint off` restores the per-depth root restart
  /// bit for bit.  No effect on scratch sessions.
  bool assumption_savepoint = true;  // --assumption-savepoint on|off
  /// Core-score weighting of §3.2 (the ablation knob), as a name (util
  /// cannot depend on bmc; the portfolio layer resolves and validates):
  /// linear | uniform | last-only | exp-decay.
  std::string core_weighting = "linear";  // --core-weighting
  /// Formula-state memory ceiling in MiB (0 = unlimited).  Bounds the
  /// tracked footprint — clause arenas, watcher heaps, the shared tape
  /// and the lemma pool, summed race-wide — and turns a breach into a
  /// clean ResourceLimit verdict at the next solver checkpoint.
  /// Accounting runs either way, so 0 is bit-identical to no ceiling.
  int mem_ceiling_mb = 0;  // --mem-ceiling MB
  /// Keep replayed tape prefixes and consumed preprocessing caches
  /// codec-encoded in memory (~3x smaller resident formula, paid for
  /// with decode work on late replays).  Representation-only: verdicts
  /// and fingerprints are unaffected.
  bool tape_cold = false;  // --tape-cold on|off
  /// Observability (src/obs): `--trace FILE` records a race-wide event
  /// trace and writes it as Chrome trace-event JSON (open in Perfetto or
  /// chrome://tracing; one track per racing solver); `--metrics FILE`
  /// enables the counter/histogram registry and writes it as flat JSON.
  /// Empty (the default) = off, one predicted branch per site.
  std::string trace_file;     // --trace FILE ("" = tracing off)
  int trace_buffer_kb = 256;  // --trace-buffer-kb: per-thread ring size
  std::string metrics_file;   // --metrics FILE ("" = metrics off)

  /// Reads `--threads`, `--policies a,b,c`, `--depth`, `--budget`,
  /// `--seed`, `--incremental`, `--simplify 0|1`, `--decision chaff|evsids`,
  /// `--glue-lbd`, `--tier-lbd`, `--share 0|1`, `--share-lbd`,
  /// `--share-size`, `--share-cap`, `--share-rank 0|1`,
  /// `--core-weighting W`, `--preprocess 0|1`, `--bve-budget N`,
  /// `--vivify-interval N`, `--assumption-savepoint 0|1`,
  /// `--mem-ceiling MB`, `--tape-cold 0|1`, `--trace FILE`,
  /// `--trace-buffer-kb KB`,
  /// `--metrics FILE`; absent options keep the defaults above
  /// (share_rank defaulting off when the host has one hardware thread).
  /// Throws std::invalid_argument on malformed values (threads < 1,
  /// empty policy list, non-numeric numbers, tier-lbd below glue-lbd,
  /// negative share filters, share-cap < 1, bve-budget < 1,
  /// vivify-interval < 0, mem-ceiling < 0, trace-buffer-kb < 1).
  static PortfolioConfig from_options(const Options& opts);
};

}  // namespace refbmc
