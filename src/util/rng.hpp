// Deterministic pseudo-random number generator (xoshiro256**).
//
// Everything in the library that needs randomness (random CNF generation,
// random simulation, property-test sweeps) takes an explicit Rng so runs
// are reproducible from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace refbmc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, n).  n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int next_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace refbmc
