#include "util/timer.hpp"

namespace refbmc {

void Timer::restart() { start_ = std::chrono::steady_clock::now(); }

double Timer::elapsed_sec() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double Deadline::remaining_sec() const {
  if (budget_sec_ <= 0.0) return 1e30;
  const double left = budget_sec_ - timer_.elapsed_sec();
  return left > 0.0 ? left : 0.0;
}

}  // namespace refbmc
