#include "util/options.hpp"

#include <cstdlib>
#include <stdexcept>
#include <thread>

namespace refbmc {

Options Options::parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positionals_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opts.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another option or absent,
    // in which case it is a boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      opts.values_[arg] = argv[++i];
    } else {
      opts.values_[arg] = "1";
    }
  }
  return opts;
}

bool Options::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Options::get(const std::string& name,
                         const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int Options::get_int(const std::string& name, int def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    return std::stoi(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

double Options::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name +
                                " expects a number, got '" + it->second + "'");
  }
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> items;
  std::string::size_type pos = 0;
  while (pos <= csv.size()) {
    const auto comma = csv.find(',', pos);
    const auto end = comma == std::string::npos ? csv.size() : comma;
    if (end > pos) items.push_back(csv.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return items;
}

PortfolioConfig PortfolioConfig::from_options(const Options& opts) {
  PortfolioConfig cfg;
  cfg.num_threads = opts.get_int("threads", cfg.num_threads);
  if (cfg.num_threads < 1)
    throw std::invalid_argument("option --threads expects a value >= 1");
  if (opts.has("policies")) {
    cfg.policies = split_csv(opts.get("policies"));
    if (cfg.policies.empty())
      throw std::invalid_argument("option --policies expects a non-empty "
                                  "comma-separated list");
  }
  cfg.max_depth = opts.get_int("depth", cfg.max_depth);
  if (cfg.max_depth < 0)
    throw std::invalid_argument("option --depth expects a value >= 0");
  cfg.budget_sec = opts.get_double("budget", cfg.budget_sec);
  if (opts.has("seed")) {
    const std::string raw = opts.get("seed");
    try {
      if (!raw.empty() && raw[0] == '-') throw std::invalid_argument(raw);
      std::size_t pos = 0;
      cfg.seed = std::stoull(raw, &pos);
      if (pos != raw.size()) throw std::invalid_argument(raw);
    } catch (const std::exception&) {
      throw std::invalid_argument(
          "option --seed expects a non-negative integer, got '" + raw + "'");
    }
  }
  cfg.incremental = opts.get_bool("incremental", cfg.incremental);
  cfg.simplify = opts.get_bool("simplify", cfg.simplify);
  cfg.decision = opts.get("decision", cfg.decision);
  cfg.glue_lbd = opts.get_int("glue-lbd", cfg.glue_lbd);
  cfg.tier_lbd = opts.get_int("tier-lbd", cfg.tier_lbd);
  if (cfg.glue_lbd < 0 || cfg.tier_lbd < cfg.glue_lbd)
    throw std::invalid_argument(
        "option --tier-lbd expects a value >= --glue-lbd >= 0");
  cfg.share = opts.get_bool("share", cfg.share);
  cfg.share_lbd = opts.get_int("share-lbd", cfg.share_lbd);
  cfg.share_size = opts.get_int("share-size", cfg.share_size);
  if (cfg.share_lbd < 0 || cfg.share_size < 0)
    throw std::invalid_argument(
        "options --share-lbd / --share-size expect values >= 0");
  cfg.share_cap = opts.get_int("share-cap", cfg.share_cap);
  if (cfg.share_cap < 1)
    throw std::invalid_argument("option --share-cap expects a value >= 1");
  // Hardware-adaptive default: with one hardware thread the racing
  // entrants timeslice, so mid-solve rank refreshes buy nothing and the
  // epoch polling is pure overhead.  (hardware_concurrency() may report
  // 0 = unknown; treat that as multi-core and keep the feature on.)
  cfg.share_rank = opts.get_bool(
      "share-rank", std::thread::hardware_concurrency() != 1);
  cfg.core_weighting = opts.get("core-weighting", cfg.core_weighting);
  cfg.preprocess = opts.get_bool("preprocess", cfg.preprocess);
  cfg.bve_budget = opts.get_int("bve-budget", cfg.bve_budget);
  if (cfg.bve_budget < 1)
    throw std::invalid_argument("option --bve-budget expects a value >= 1");
  cfg.vivify_interval = opts.get_int("vivify-interval", cfg.vivify_interval);
  cfg.vivify_interval_set = opts.has("vivify-interval");
  if (cfg.vivify_interval < 0)
    throw std::invalid_argument(
        "option --vivify-interval expects a value >= 0");
  cfg.assumption_savepoint =
      opts.get_bool("assumption-savepoint", cfg.assumption_savepoint);
  cfg.mem_ceiling_mb = opts.get_int("mem-ceiling", cfg.mem_ceiling_mb);
  if (cfg.mem_ceiling_mb < 0)
    throw std::invalid_argument("option --mem-ceiling expects a value >= 0");
  cfg.tape_cold = opts.get_bool("tape-cold", cfg.tape_cold);
  cfg.trace_file = opts.get("trace", cfg.trace_file);
  cfg.trace_buffer_kb = opts.get_int("trace-buffer-kb", cfg.trace_buffer_kb);
  if (cfg.trace_buffer_kb < 1)
    throw std::invalid_argument("option --trace-buffer-kb expects a value >= 1");
  cfg.metrics_file = opts.get("metrics", cfg.metrics_file);
  return cfg;
}

bool Options::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("option --" + name +
                              " expects a boolean, got '" + v + "'");
}

}  // namespace refbmc
