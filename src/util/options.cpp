#include "util/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace refbmc {

Options Options::parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positionals_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opts.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another option or absent,
    // in which case it is a boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      opts.values_[arg] = argv[++i];
    } else {
      opts.values_[arg] = "1";
    }
  }
  return opts;
}

bool Options::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Options::get(const std::string& name,
                         const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int Options::get_int(const std::string& name, int def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    return std::stoi(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

double Options::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name +
                                " expects a number, got '" + it->second + "'");
  }
}

bool Options::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("option --" + name +
                              " expects a boolean, got '" + v + "'");
}

}  // namespace refbmc
