// Minimal leveled logger.
//
// The library itself is quiet by default (level = Warn); examples and
// benches raise the level explicitly.  No global mutable state other than
// the level and sink, both settable for tests.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace refbmc {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Sets the minimum level that is emitted.  Returns the previous level.
LogLevel set_log_level(LogLevel level);
LogLevel log_level();

/// Replaces the output sink (default: stderr).  Pass nullptr to restore
/// the default sink.  Returns the previous sink.
LogSink set_log_sink(LogSink sink);

/// Emits a message if `level >= log_level()`.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace refbmc

#define REFBMC_LOG(level) ::refbmc::detail::LogLine(level)
#define REFBMC_DEBUG() REFBMC_LOG(::refbmc::LogLevel::Debug)
#define REFBMC_INFO() REFBMC_LOG(::refbmc::LogLevel::Info)
#define REFBMC_WARN() REFBMC_LOG(::refbmc::LogLevel::Warn)
#define REFBMC_ERROR() REFBMC_LOG(::refbmc::LogLevel::Error)
