// Minimal leveled logger, thread-safe per line.
//
// The library itself is quiet by default (level = Warn); examples and
// benches raise the level explicitly.  No global mutable state other than
// the level and sink, both settable for tests.
//
// Concurrency: racing portfolio entrants log from their own threads, so
// emission (level read, sink dispatch, stderr write) happens under one
// mutex — lines never interleave mid-character.  Each thread can label
// itself with set_log_thread_tag ("static", "w0", ...); tagged lines
// prefix the message with `|tag| ` (visible to custom sinks as well),
// untagged ones are byte-identical to the single-threaded format.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace refbmc {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Sets the minimum level that is emitted.  Returns the previous level.
LogLevel set_log_level(LogLevel level);
LogLevel log_level();

/// Replaces the output sink (default: stderr).  Pass nullptr to restore
/// the default sink.  Returns the previous sink.
LogSink set_log_sink(LogSink sink);

/// Labels every line the *calling thread* logs from now on (entrant /
/// worker id in portfolio runs).  An empty tag restores untagged lines.
/// Returns the previous tag.
std::string set_log_thread_tag(std::string tag);
const std::string& log_thread_tag();

/// Emits a message if `level >= log_level()`.  Serialized: one line at a
/// time, whole, no matter how many threads log concurrently.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace refbmc

#define REFBMC_LOG(level) ::refbmc::detail::LogLine(level)
#define REFBMC_DEBUG() REFBMC_LOG(::refbmc::LogLevel::Debug)
#define REFBMC_INFO() REFBMC_LOG(::refbmc::LogLevel::Info)
#define REFBMC_WARN() REFBMC_LOG(::refbmc::LogLevel::Warn)
#define REFBMC_ERROR() REFBMC_LOG(::refbmc::LogLevel::Error)
