#include "util/log.hpp"

#include <cstdio>

namespace refbmc {
namespace {

LogLevel g_level = LogLevel::Warn;
LogSink g_sink;  // empty → default stderr sink

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info ";
    case LogLevel::Warn: return "warn ";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off  ";
  }
  return "?";
}

}  // namespace

LogLevel set_log_level(LogLevel level) {
  const LogLevel prev = g_level;
  g_level = level;
  return prev;
}

LogLevel log_level() { return g_level; }

LogSink set_log_sink(LogSink sink) {
  LogSink prev = g_sink;
  g_sink = std::move(sink);
  return prev;
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level || g_level == LogLevel::Off) return;
  if (g_sink) {
    g_sink(level, msg);
  } else {
    std::fprintf(stderr, "[refbmc %s] %s\n", level_tag(level), msg.c_str());
  }
}

}  // namespace refbmc
