#include "util/log.hpp"

#include <cstdio>
#include <mutex>

namespace refbmc {
namespace {

// One mutex guards level, sink and emission: racing solvers log
// concurrently, and a line must reach the sink/stderr whole.  Level
// reads on the filter path take the same mutex — logging sits at cold
// boundaries (per depth, per race), never inside BCP.
std::mutex g_mu;
LogLevel g_level = LogLevel::Warn;
LogSink g_sink;  // empty → default stderr sink

thread_local std::string t_tag;  // per-thread line tag (entrant/job id)

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info ";
    case LogLevel::Warn: return "warn ";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off  ";
  }
  return "?";
}

}  // namespace

LogLevel set_log_level(LogLevel level) {
  const std::lock_guard<std::mutex> lock(g_mu);
  const LogLevel prev = g_level;
  g_level = level;
  return prev;
}

LogLevel log_level() {
  const std::lock_guard<std::mutex> lock(g_mu);
  return g_level;
}

LogSink set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_mu);
  LogSink prev = g_sink;
  g_sink = std::move(sink);
  return prev;
}

std::string set_log_thread_tag(std::string tag) {
  std::string prev = std::move(t_tag);
  t_tag = std::move(tag);
  return prev;
}

const std::string& log_thread_tag() { return t_tag; }

void log_message(LogLevel level, const std::string& msg) {
  const std::string& line =
      t_tag.empty() ? msg : "|" + t_tag + "| " + msg;
  const std::lock_guard<std::mutex> lock(g_mu);
  if (level < g_level || g_level == LogLevel::Off) return;
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fprintf(stderr, "[refbmc %s] %s\n", level_tag(level), line.c_str());
  }
}

}  // namespace refbmc
