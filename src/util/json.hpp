// Minimal streaming JSON writer, shared by the benches (BENCH_*.json)
// and anything else that needs machine-readable output.
//
// Guarantees aimed at textual diffing by the CI bench-trajectory step:
//
//   * deterministic output — members are emitted exactly in call order
//     (no hash/map iteration anywhere), so two runs over the same inputs
//     produce byte-identical documents apart from measured values;
//   * valid JSON always — every string value is escaped (quotes,
//     backslashes, control characters as \uXXXX) and non-finite doubles
//     (NaN, ±Inf have no JSON spelling) degrade to null instead of
//     emitting a token no parser accepts.
//
// Usage: begin/end pairs, key() before each member inside an object,
// comma placement is automatic.  kv() is key()+value() in one call.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace refbmc {

class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const std::string& name) {
    separate();
    out_ << quote(name) << ":";
    just_keyed_ = true;
  }

  void value(const std::string& v) { scalar(quote(v)); }
  void value(const char* v) { scalar(quote(v)); }
  void value(double v) {
    if (!std::isfinite(v)) {
      scalar("null");  // NaN/Inf are not JSON; null keeps the doc parseable
      return;
    }
    std::ostringstream os;
    os.precision(9);
    os << v;
    scalar(os.str());
  }
  void value(std::uint64_t v) { scalar(std::to_string(v)); }
  void value(int v) { scalar(std::to_string(v)); }
  void value(bool v) { scalar(v ? "true" : "false"); }

  /// Convenience: key + scalar value in one call.
  template <typename T>
  void kv(const std::string& name, T v) {
    key(name);
    value(v);
  }

  std::string str() const { return out_.str(); }

  /// Writes the document to `path` (e.g. "BENCH_portfolio.json").
  /// Returns false when the file cannot be opened.
  bool write_file(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << out_.str() << "\n";
    return bool(f);
  }

 private:
  static std::string quote(const std::string& s) {
    std::string q = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': q += "\\\""; break;
        case '\\': q += "\\\\"; break;
        case '\n': q += "\\n"; break;
        case '\r': q += "\\r"; break;
        case '\t': q += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            q += buf;
          } else {
            q += c;
          }
      }
    }
    q += '"';
    return q;
  }

  void open(char c) {
    separate();
    out_ << c;
    need_comma_ = false;
    just_keyed_ = false;
  }
  void close(char c) {
    out_ << c;
    need_comma_ = true;
    just_keyed_ = false;
  }
  void scalar(const std::string& text) {
    separate();
    out_ << text;
    need_comma_ = true;
    just_keyed_ = false;
  }
  void separate() {
    if (just_keyed_) {
      just_keyed_ = false;
      need_comma_ = false;
      return;
    }
    if (need_comma_) out_ << ",";
    need_comma_ = false;
  }

  std::ostringstream out_;
  bool need_comma_ = false;
  bool just_keyed_ = false;
};

}  // namespace refbmc
