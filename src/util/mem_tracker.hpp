// MemTracker: race-wide accounting of the formula state's heap footprint,
// and the enforcement point of `--mem-ceiling`.
//
// One tracker is shared by everything that holds per-check state — the
// chunked ClauseArena (chunk allocations), ClauseTape/SharedTape (op and
// literal vectors, frozen codec segments, simplified/delta caches), the
// SharedClausePool ring, and the propagator's watcher lists.  Components
// charge deltas with add()/sub(); the solver and the engine poll
// breached() at their existing conflict/decision/depth checkpoints and
// wind down with a clean ResourceLimit verdict instead of letting the
// allocator run into the kernel's OOM killer.
//
// Accounting is always on (it is a handful of relaxed atomics per chunk
// or cache build, nowhere near any hot path), so `--mem-ceiling 0` (off)
// differs from a ceiling run only in never reporting a breach — the
// search itself is bit-identical.  peak() is monotone across the whole
// race: per-depth DepthStats::peak_bytes snapshots it at depth
// boundaries.
#pragma once

#include <atomic>
#include <cstdint>

namespace refbmc {

class MemTracker {
 public:
  MemTracker() = default;
  explicit MemTracker(std::uint64_t ceiling_bytes)
      : ceiling_(ceiling_bytes) {}

  MemTracker(const MemTracker&) = delete;
  MemTracker& operator=(const MemTracker&) = delete;

  /// 0 disables enforcement (accounting still runs).
  void set_ceiling(std::uint64_t bytes) {
    ceiling_.store(bytes, std::memory_order_relaxed);
  }
  std::uint64_t ceiling() const {
    return ceiling_.load(std::memory_order_relaxed);
  }

  void add(std::uint64_t bytes) {
    const std::uint64_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // CAS-max: peak only moves up, and stale loads just retry.
    std::uint64_t seen = peak_.load(std::memory_order_relaxed);
    while (seen < now &&
           !peak_.compare_exchange_weak(seen, now,
                                        std::memory_order_relaxed)) {
    }
  }
  void sub(std::uint64_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::uint64_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// True once the tracked footprint exceeds a non-zero ceiling.  Cheap
  /// enough for the solver's conflict-boundary checkpoint.
  bool breached() const {
    const std::uint64_t cap = ceiling_.load(std::memory_order_relaxed);
    return cap != 0 && current_.load(std::memory_order_relaxed) > cap;
  }

 private:
  std::atomic<std::uint64_t> current_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> ceiling_{0};
};

}  // namespace refbmc
