// Wall-clock stopwatch used by the BMC engine and the benchmark harnesses.
#pragma once

#include <chrono>

namespace refbmc {

/// Monotonic stopwatch.  Starts running on construction.
class Timer {
 public:
  Timer() { restart(); }

  /// Resets the start point to now.
  void restart();

  /// Seconds elapsed since construction or the last restart().
  double elapsed_sec() const;

  /// Milliseconds elapsed since construction or the last restart().
  double elapsed_ms() const { return elapsed_sec() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Deadline helper: construct with a budget in seconds; expired() flips to
/// true once the budget is spent.  A non-positive budget means "no limit".
class Deadline {
 public:
  explicit Deadline(double budget_sec) : budget_sec_(budget_sec) {}

  bool expired() const {
    return budget_sec_ > 0.0 && timer_.elapsed_sec() >= budget_sec_;
  }
  double remaining_sec() const;
  double budget_sec() const { return budget_sec_; }

 private:
  Timer timer_;
  double budget_sec_;
};

}  // namespace refbmc
