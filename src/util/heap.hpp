// Indexed binary max-heap over dense integer keys [0, n).
//
// This is the decision heap of the SAT solver: elements are variable
// indices, the ordering is supplied by a comparator ("greater than" =
// higher decision priority).  Supports decrease/increase-key via update(),
// membership query, and full rebuild when the comparator's meaning changes
// (the dynamic ordering policy swaps comparators mid-search).
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace refbmc {

/// Compare is a callable `bool(int a, int b)` returning true when `a` has
/// strictly higher priority than `b`.
template <typename Compare>
class IndexedMaxHeap {
 public:
  explicit IndexedMaxHeap(Compare gt) : gt_(gt) {}

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  bool contains(int x) const {
    return x >= 0 && static_cast<std::size_t>(x) < pos_.size() &&
           pos_[static_cast<std::size_t>(x)] >= 0;
  }

  /// Ensures capacity for keys in [0, n).
  void reserve_keys(int n) {
    if (static_cast<std::size_t>(n) > pos_.size())
      pos_.resize(static_cast<std::size_t>(n), -1);
  }

  void clear() {
    for (int x : heap_) pos_[static_cast<std::size_t>(x)] = -1;
    heap_.clear();
  }

  void insert(int x) {
    reserve_keys(x + 1);
    REFBMC_ASSERT(!contains(x));
    pos_[static_cast<std::size_t>(x)] = static_cast<int>(heap_.size());
    heap_.push_back(x);
    sift_up(heap_.size() - 1);
  }

  /// Restores the heap property around `x` after its priority changed.
  void update(int x) {
    if (!contains(x)) return;
    const auto i = static_cast<std::size_t>(pos_[static_cast<std::size_t>(x)]);
    sift_up(i);
    sift_down(pos_[static_cast<std::size_t>(x)]);
  }

  int top() const {
    REFBMC_ASSERT(!heap_.empty());
    return heap_.front();
  }

  int pop() {
    REFBMC_ASSERT(!heap_.empty());
    const int x = heap_.front();
    remove_at(0);
    return x;
  }

  void erase(int x) {
    if (!contains(x)) return;
    remove_at(static_cast<std::size_t>(pos_[static_cast<std::size_t>(x)]));
  }

  /// Rebuilds the heap in O(n); call after the comparator's underlying
  /// scores changed wholesale (e.g. VSIDS rescale or policy switch).
  void rebuild() {
    if (heap_.empty()) return;
    for (std::size_t i = heap_.size(); i-- > 0;) sift_down_from(i);
  }

 private:
  void sift_down(int pos_of_x) { sift_down_from(static_cast<std::size_t>(pos_of_x)); }

  void sift_up(std::size_t i) {
    const int x = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!gt_(x, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
      i = parent;
    }
    heap_[i] = x;
    pos_[static_cast<std::size_t>(x)] = static_cast<int>(i);
  }

  void sift_down_from(std::size_t i) {
    const int x = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t left = 2 * i + 1;
      if (left >= n) break;
      const std::size_t right = left + 1;
      std::size_t best = left;
      if (right < n && gt_(heap_[right], heap_[left])) best = right;
      if (!gt_(heap_[best], x)) break;
      heap_[i] = heap_[best];
      pos_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
      i = best;
    }
    heap_[i] = x;
    pos_[static_cast<std::size_t>(x)] = static_cast<int>(i);
  }

  void remove_at(std::size_t i) {
    const int x = heap_[i];
    pos_[static_cast<std::size_t>(x)] = -1;
    const int last = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
      heap_[i] = last;
      pos_[static_cast<std::size_t>(last)] = static_cast<int>(i);
      sift_up(i);
      sift_down_from(static_cast<std::size_t>(
          pos_[static_cast<std::size_t>(last)]));
    }
  }

  Compare gt_;
  std::vector<int> heap_;  // heap of keys
  std::vector<int> pos_;   // key → index in heap_, or -1
};

}  // namespace refbmc
