#include "util/rng.hpp"

#include "util/assert.hpp"

namespace refbmc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four lanes via splitmix64 as recommended by the xoshiro authors.
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // All-zero state would be a fixed point; splitmix64 cannot produce it for
  // four consecutive outputs, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  REFBMC_EXPECTS(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

int Rng::next_int(int lo, int hi) {
  REFBMC_EXPECTS(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(static_cast<long long>(hi) - lo) + 1;
  return lo + static_cast<int>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits → [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

}  // namespace refbmc
