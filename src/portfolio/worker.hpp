// Worker-pool plumbing for the portfolio scheduler.
//
// Each worker owns a deque of job indices: the owner pushes and pops at
// the back (LIFO keeps its cache warm), thieves steal from the front
// (FIFO steals the oldest — and for round-robin-seeded queues, the
// largest-grained — work).  The queues are mutex-guarded: job granularity
// here is an entire BMC run (milliseconds to seconds), so lock-free
// Chase-Lev buys nothing and a mutex keeps the invariants obvious.
//
// The batch is fixed up front (no worker produces new jobs), so the
// termination condition is simply "own queue and every victim empty".
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "portfolio/job.hpp"
#include "util/rng.hpp"

namespace refbmc::portfolio {

class WorkStealingQueue {
 public:
  void push(std::size_t job_index) {
    const std::lock_guard<std::mutex> lock(mu_);
    q_.push_back(job_index);
  }

  /// Owner side: takes the most recently pushed index.
  bool try_pop(std::size_t& out) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty()) return false;
    out = q_.back();
    q_.pop_back();
    return true;
  }

  /// Thief side: takes the oldest index.
  bool try_steal(std::size_t& out) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty()) return false;
    out = q_.front();
    q_.pop_front();
    return true;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<std::size_t> q_;
};

/// Everything a worker thread needs, owned by the scheduler for the
/// duration of one batch.
struct WorkerContext {
  int id = 0;
  std::uint64_t rng_seed = 0;  // victim-selection seed (fixed per worker)
  const std::vector<Job>* jobs = nullptr;
  std::vector<JobResult>* results = nullptr;         // slot per job index
  std::vector<WorkStealingQueue>* queues = nullptr;  // one per worker
  const std::atomic<bool>* stop = nullptr;           // pool-wide cancel
  std::atomic<std::uint64_t>* steals = nullptr;
};

/// Worker loop: drain own queue, then steal until every queue is empty or
/// the pool is cancelled.  Cancelled workers still record a JobResult
/// (with Status::ResourceLimit) for any job they had already started.
void worker_main(WorkerContext ctx);

}  // namespace refbmc::portfolio
