#include "portfolio/clause_pool.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace refbmc::portfolio {

SharedClausePool::SharedClausePool(std::size_t capacity)
    : capacity_(capacity), ring_(capacity) {
  REFBMC_EXPECTS_MSG(capacity >= 1, "clause pool needs capacity >= 1");
}

SharedClausePool::~SharedClausePool() {
  if (mem_ != nullptr) mem_->sub(charged_);
}

void SharedClausePool::set_mem_tracker(MemTracker* tracker) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (mem_ != nullptr) mem_->sub(charged_);
  mem_ = tracker;
  if (mem_ != nullptr) mem_->add(charged_);
}

bool SharedClausePool::publish(std::span<const sat::Lit> tape_lits,
                               std::uint32_t lbd, int producer) {
  if (closed()) return false;  // losing entrants wind down without the lock
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t seq = head_.load(std::memory_order_relaxed);
  PoolClause& slot = ring_[seq % capacity_];
  const std::size_t cap_before = slot.lits.capacity();
  slot.lits.assign(tape_lits.begin(), tape_lits.end());
  if (slot.lits.capacity() != cap_before) {
    // Slot buffers are only ever regrown (assign never shrinks capacity),
    // so the delta is what the ring newly holds.
    const std::size_t delta =
        (slot.lits.capacity() - cap_before) * sizeof(sat::Lit);
    charged_ += delta;
    if (mem_ != nullptr) mem_->add(delta);
  }
  slot.lbd = lbd;
  slot.producer = producer;
  head_.store(seq + 1, std::memory_order_release);
  // Lands on the publishing entrant's own track; value = pool sequence,
  // so cross-track publish order is reconstructible from the trace.
  REFBMC_TRACE_EVENT(obs::EventKind::PoolPublish, -1,
                     static_cast<std::int64_t>(seq));
  return true;
}

std::uint64_t SharedClausePool::fetch(std::uint64_t& cursor, int consumer,
                                      std::vector<PoolClause>& out,
                                      std::uint64_t seen_upto) {
  out.clear();
  if (!has_new(cursor)) return 0;
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t oldest = head > capacity_ ? head - capacity_ : 0;
  // Loss = never-seen entries that aged out: below the oldest live slot
  // yet above both the cursor and everything this consumer read before a
  // deliberate rewind.
  const std::uint64_t loss_from = std::max(cursor, seen_upto);
  const std::uint64_t lost = loss_from < oldest ? oldest - loss_from : 0;
  for (std::uint64_t seq = std::max(cursor, oldest); seq < head; ++seq) {
    const PoolClause& slot = ring_[seq % capacity_];
    if (slot.producer == consumer) continue;  // never hand a clause back
    out.push_back(slot);
  }
  cursor = head;
  overwritten_.fetch_add(lost, std::memory_order_relaxed);
  return lost;
}

PoolEndpoint::PoolEndpoint(SharedClausePool& pool, int producer)
    : pool_(pool), producer_(producer) {}

void PoolEndpoint::sync_vars(const std::vector<sat::Var>& tape_to_solver) {
  REFBMC_EXPECTS_MSG(tape_to_solver.size() >= tape_to_solver_.size(),
                     "replay cursors only grow");
  for (std::size_t t = tape_to_solver_.size(); t < tape_to_solver.size();
       ++t) {
    const sat::Var sv = tape_to_solver[t];
    tape_to_solver_.push_back(sv);
    // Preprocessing leaves eliminated tape variables as kVarUndef slots:
    // they have no solver image, so only the forward map records them
    // (deliver() drops clauses that mention one; export never sees one).
    if (sv < 0) continue;
    const auto s = static_cast<std::size_t>(sv);
    if (s >= solver_to_tape_.size()) solver_to_tape_.resize(s + 1, -1);
    solver_to_tape_[s] = static_cast<sat::Var>(t);
  }
}

void PoolEndpoint::rebind() {
  tape_to_solver_.clear();
  solver_to_tape_.clear();
  parked_.clear();
  parked_map_size_ = 0;
  // Rewind so the new solver re-imports every lemma still in the ring
  // (fetch clamps to the oldest live entry; seen_upto_ keeps already-read
  // entries out of the overwrite-loss count).
  cursor_ = 0;
}

bool PoolEndpoint::export_clause(std::span<const sat::Lit> lits,
                                 std::uint32_t lbd) {
  if (pool_.closed()) return false;
  lit_buf_.clear();
  for (const sat::Lit l : lits) {
    const auto v = static_cast<std::size_t>(l.var());
    if (v >= solver_to_tape_.size() || solver_to_tape_[v] < 0) {
      // Solver-local variable (activation guard): the clause is not
      // implied by the shared formula — refusing it is the soundness
      // filter, not an optimization.
      ++rejected_unmapped_;
      return false;
    }
    lit_buf_.push_back(sat::Lit::make(solver_to_tape_[v], l.negated()));
  }
  // publish() re-checks the close epoch itself: the race may be decided
  // between our fast-path check above and here, and the exported counter
  // must only move when the clause actually landed in the ring.
  if (!pool_.publish(lit_buf_, lbd, producer_)) return false;
  ++published_;
  return true;
}

void PoolEndpoint::deliver(const SharedClausePool::PoolClause& pc,
                           ImportSink& sink) {
  lit_buf_.clear();
  for (const sat::Lit l : pc.lits) {
    const auto t = static_cast<std::size_t>(l.var());
    if (t >= tape_to_solver_.size()) {
      // Mentions a frame this entrant has not replayed yet: park it and
      // retry once a replay has extended the map (has_pending and the
      // retry below gate on that, so restarts don't churn the park list).
      parked_.push_back(pc);
      parked_map_size_ = tape_to_solver_.size();
      return;
    }
    if (tape_to_solver_[t] < 0) {
      // The variable was eliminated by this consumer's preprocessing:
      // no solver image exists and none ever will, so drop the clause
      // for good (parking would retry forever).  The lemma is still
      // implied by the shared tape — other consumers keep it.
      ++dropped_eliminated_;
      return;
    }
    lit_buf_.push_back(sat::Lit::make(tape_to_solver_[t], l.negated()));
  }
  sink.add(lit_buf_, pc.lbd);
  ++imported_;
  pool_.note_delivered();
}

void PoolEndpoint::import_clauses(ImportSink& sink) {
  // Parked clauses first — but only when a replay has grown the map
  // since they failed, which is the only way translation can newly
  // succeed.  Swap out so deliver() can re-park cleanly.
  if (!parked_.empty() && tape_to_solver_.size() > parked_map_size_) {
    std::vector<SharedClausePool::PoolClause> retry;
    retry.swap(parked_);
    parked_map_size_ = tape_to_solver_.size();
    for (const auto& pc : retry) deliver(pc, sink);
  }
  pool_.fetch(cursor_, producer_, fetch_buf_, seen_upto_);
  if (cursor_ > seen_upto_) seen_upto_ = cursor_;
  for (const auto& pc : fetch_buf_) deliver(pc, sink);
}

}  // namespace refbmc::portfolio
