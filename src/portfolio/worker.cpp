#include "portfolio/worker.hpp"

#include "util/assert.hpp"

namespace refbmc::portfolio {

namespace {

bool pool_stopped(const WorkerContext& ctx) {
  return ctx.stop != nullptr && ctx.stop->load(std::memory_order_relaxed);
}

/// Result for a job the pool cancelled before this worker started it.
JobResult skipped_result(const Job& job, int worker_id) {
  JobResult r;
  r.name = job.name;
  r.bad_index = job.bad_index;
  r.policy = job.config.policy;
  r.result.status = bmc::BmcResult::Status::ResourceLimit;
  r.worker_id = worker_id;
  return r;
}

}  // namespace

void worker_main(WorkerContext ctx) {
  REFBMC_EXPECTS(ctx.jobs != nullptr && ctx.results != nullptr &&
                 ctx.queues != nullptr);
  auto& queues = *ctx.queues;
  const std::size_t n = queues.size();
  const auto my_id = static_cast<std::size_t>(ctx.id);
  Rng rng(ctx.rng_seed);

  // Every queued index ends up with a result — executed, cut short by the
  // stop flag inside the engine, or marked skipped here — so the batch
  // report always has one entry per job.
  while (true) {
    std::size_t ji = 0;
    bool got = queues[my_id].try_pop(ji);
    if (!got) {
      const std::size_t start = n > 1 ? rng.next_below(n) : 0;
      for (std::size_t d = 0; d < n && !got; ++d) {
        const std::size_t v = (start + d) % n;
        if (v == my_id) continue;
        got = queues[v].try_steal(ji);
        if (got && ctx.steals != nullptr)
          ctx.steals->fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!got) return;  // every queue empty: the batch is drained

    const Job& job = (*ctx.jobs)[ji];
    JobResult r =
        pool_stopped(ctx) ? skipped_result(job, ctx.id) : run_job(job, ctx.stop);
    r.job_index = ji;
    r.worker_id = ctx.id;
    (*ctx.results)[ji] = std::move(r);
  }
}

}  // namespace refbmc::portfolio
