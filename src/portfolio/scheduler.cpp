#include "portfolio/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "bmc/rank_source.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace refbmc::portfolio {

namespace {

/// Joins `threads`, meanwhile relaying an external cancellation source
/// and an optional deadline onto the pool-internal stop flag.  With
/// nothing to relay this is a plain join (no latency quantization); the
/// relay granularity otherwise (1ms) is far below any engine's depth
/// time.
void join_with_relay(std::vector<std::thread>& threads,
                     std::atomic<std::size_t>& done, std::size_t expected,
                     const std::atomic<bool>* external_stop,
                     const Deadline* deadline, std::atomic<bool>& stop) {
  if (external_stop != nullptr || deadline != nullptr) {
    while (done.load(std::memory_order_acquire) < expected) {
      if ((external_stop != nullptr &&
           external_stop->load(std::memory_order_relaxed)) ||
          (deadline != nullptr && deadline->expired())) {
        stop.store(true, std::memory_order_relaxed);
        break;  // flag relayed; the workers wind down on their own
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (auto& t : threads) t.join();
}

void rethrow_first(const std::vector<std::exception_ptr>& errors) {
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

/// Policies that actually read the rank feed (and publish cores into
/// it).  Baseline / Evsids ignore it entirely; Shtrichman ranks a fixed
/// instance from scratch each depth and never consumes the accumulation.
bool consumes_rank(bmc::OrderingPolicy p) {
  return p == bmc::OrderingPolicy::Static ||
         p == bmc::OrderingPolicy::Dynamic ||
         p == bmc::OrderingPolicy::Replace;
}

/// A shared rank source pays off only when two+ consumers can overlap;
/// see SharingConfig::rank.  `rank_force` bypasses the check for tests.
bool shared_rank_pays_off(const SharingConfig& sharing,
                          std::size_t consumers) {
  if (sharing.rank_force) return true;
  return std::thread::hardware_concurrency() > 1 && consumers >= 2;
}

}  // namespace

const JobResult& RaceResult::winning() const {
  REFBMC_EXPECTS_MSG(has_winner(), "race produced no verdict");
  return entrants[static_cast<std::size_t>(winner)];
}

bmc::BmcResult::Status RaceResult::status() const {
  return has_winner() ? winning().result.status
                      : bmc::BmcResult::Status::ResourceLimit;
}

std::vector<bmc::OrderingPolicy> default_race_policies() {
  return {bmc::OrderingPolicy::Baseline, bmc::OrderingPolicy::Static,
          bmc::OrderingPolicy::Dynamic, bmc::OrderingPolicy::Shtrichman,
          bmc::OrderingPolicy::Evsids};
}

PortfolioScheduler::PortfolioScheduler(int num_threads,
                                       std::uint64_t base_seed,
                                       SharingConfig sharing)
    : num_threads_(num_threads), base_seed_(base_seed), sharing_(sharing) {
  REFBMC_EXPECTS_MSG(num_threads >= 1, "scheduler needs at least one thread");
  REFBMC_EXPECTS_MSG(!sharing_.enabled ||
                         (sharing_.lbd_max >= 0 && sharing_.size_max >= 0 &&
                          sharing_.capacity >= 1),
                     "invalid sharing configuration");
}

RaceResult PortfolioScheduler::race(
    const model::Netlist& net, std::size_t bad_index,
    const bmc::EngineConfig& base,
    const std::vector<bmc::OrderingPolicy>& policies) const {
  REFBMC_EXPECTS_MSG(!policies.empty(), "race needs at least one policy");

  RaceResult out;
  out.entrants.resize(policies.size());

  // One formula-state tracker per race: the tape, every entrant's clause
  // arena and watcher heap, and the lemma pool all charge here, so a
  // --mem-ceiling bounds the race's SUM, not each entrant separately.  A
  // caller-supplied tracker (service seam) takes precedence.  Declared
  // before tape and pool: its chargers must not outlive it.
  MemTracker race_mem;
  MemTracker* mem =
      base.mem_tracker != nullptr ? base.mem_tracker : &race_mem;

  // Encode once: every entrant replays this shared formula instead of
  // unrolling its own copy (frames_encoded stays one-per-depth no matter
  // how many policies race).
  bmc::EncoderOptions tape_opts;
  tape_opts.mode = base.bad_mode;
  tape_opts.simplify = base.simplify;
  bmc::SharedTape tape(net, bad_index, tape_opts, base.preprocess);

  // One lemma pool per race: every entrant replays the same tape, so the
  // pool's tape-space clauses are meaningful to all of them.  A
  // single-entrant race has nobody to share with.
  std::unique_ptr<SharedClausePool> pool;
  if (sharing_.enabled && policies.size() > 1) {
    pool = std::make_unique<SharedClausePool>(
        static_cast<std::size_t>(sharing_.capacity));
    pool->set_mem_tracker(mem);
  }

  // And one rank source per race: cores live in model-node space, so the
  // merged accumulation is meaningful to every entrant regardless of its
  // solver's variable numbering (each projects through its own origin
  // map).  Entrants whose policy ignores the rank feed simply never
  // publish or refresh.  A caller-supplied base.rank_source takes
  // precedence over creating our own — that is how the serving layer
  // warm-starts a race from a persisted accumulation (and reads the
  // merged snapshot back out afterwards).
  std::unique_ptr<bmc::SharedRankSource> owned_rank_source;
  bmc::RankSource* rank_source = base.rank_source;
  if (rank_source == nullptr && sharing_.rank && policies.size() > 1) {
    const std::size_t consumers = static_cast<std::size_t>(
        std::count_if(policies.begin(), policies.end(), consumes_rank));
    if (shared_rank_pays_off(sharing_, consumers)) {
      owned_rank_source =
          std::make_unique<bmc::SharedRankSource>(base.weighting);
      rank_source = owned_rank_source.get();
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<int> winner{-1};
  std::atomic<std::size_t> done{0};
  std::vector<std::exception_ptr> errors(policies.size());
  // Cancellation-latency bookkeeping: the winner stamps verdict_ts at
  // its CAS success, every entrant stamps end_ts when its job function
  // returns.  Plain monotonic microseconds — no tracing required.
  std::atomic<std::uint64_t> verdict_ts{0};
  std::vector<std::uint64_t> end_ts(policies.size(), 0);
  Timer timer;

  std::vector<std::thread> threads;
  threads.reserve(policies.size());
  for (std::size_t i = 0; i < policies.size(); ++i) {
    // Submit lands on the CALLER's track (the race driver); the rest of
    // the lifecycle lands on the entrant's own.
    REFBMC_TRACE_EVENT(obs::EventKind::JobSubmit, -1,
                       static_cast<std::int64_t>(i));
    threads.emplace_back([&, i] {
      // One trace track and one log tag per entrant, named after its
      // policy — the per-solver lanes the Perfetto view hinges on.
      obs::trace_set_thread_track(to_string(policies[i]));
      set_log_thread_tag(to_string(policies[i]));
      REFBMC_TRACE_EVENT(obs::EventKind::JobStart, -1,
                         static_cast<std::int64_t>(i));
      try {
        Job job;
        job.net = &net;
        job.bad_index = bad_index;
        job.name = to_string(policies[i]);
        job.config = base;
        job.config.policy = policies[i];
        job.config.shared_tape = &tape;
        if (pool != nullptr) {
          job.config.share_pool = pool.get();
          job.config.share_producer = static_cast<int>(i);
          job.config.solver.share_lbd = sharing_.lbd_max;
          job.config.solver.share_size = sharing_.size_max;
        }
        if (rank_source != nullptr) job.config.rank_source = rank_source;
        job.config.mem_tracker = mem;
        // The Shtrichman ordering has no incremental mode; demote that
        // entrant to scratch solving rather than disqualifying it
        // (scratch and incremental sessions replay the same tape).
        if (job.config.incremental &&
            policies[i] == bmc::OrderingPolicy::Shtrichman)
          job.config.incremental = false;

        JobResult r = run_job(job, &stop);
        r.job_index = i;
        r.worker_id = static_cast<int>(i);
        if (r.result.status != bmc::BmcResult::Status::ResourceLimit) {
          int expected = -1;
          if (winner.compare_exchange_strong(expected, static_cast<int>(i))) {
            verdict_ts.store(obs::monotonic_now_us(),
                             std::memory_order_release);
            REFBMC_TRACE_EVENT(obs::EventKind::JobVerdict, -1,
                               static_cast<std::int64_t>(r.result.status));
            REFBMC_TRACE_EVENT(obs::EventKind::CancelRequest, -1,
                               static_cast<std::int64_t>(i));
            // Epoch close: the race is decided — losers wind down without
            // publishing lemmas nobody will read.
            if (pool != nullptr) {
              pool->close();
              REFBMC_TRACE_EVENT(obs::EventKind::PoolClose, -1,
                                 static_cast<std::int64_t>(pool->published()));
            }
            stop.store(true, std::memory_order_release);
          }
        }
        out.entrants[i] = std::move(r);
      } catch (...) {
        errors[i] = std::current_exception();
        stop.store(true, std::memory_order_release);
      }
      end_ts[i] = obs::monotonic_now_us();
      REFBMC_TRACE_EVENT(obs::EventKind::JobStop, -1,
                         static_cast<std::int64_t>(i));
      set_log_thread_tag({});
      done.fetch_add(1, std::memory_order_release);
    });
  }

  join_with_relay(threads, done, policies.size(), base.stop,
                  /*deadline=*/nullptr, stop);
  rethrow_first(errors);

  out.winner = winner.load();
  out.wall_time_sec = timer.elapsed_sec();
  out.frames_encoded = tape.frames_encoded();
  // Verdict -> last loser actually stopped.  Losers that finished before
  // the verdict cost nothing; the clamp keeps an all-early race at 0.
  if (out.winner >= 0 && policies.size() > 1) {
    const std::uint64_t verdict = verdict_ts.load(std::memory_order_acquire);
    std::uint64_t last_stop = 0;
    for (std::size_t i = 0; i < policies.size(); ++i) {
      if (static_cast<int>(i) == out.winner) continue;
      last_stop = std::max(last_stop, end_ts[i]);
    }
    out.cancel_latency_us = last_stop > verdict ? last_stop - verdict : 0;
    if (obs::metrics_active())
      obs::metrics()
          .histogram("race.cancel_latency_us")
          .observe(out.cancel_latency_us);
  }
  if (pool != nullptr) {
    out.sharing = true;
    out.clauses_exported = pool->published();
    out.clauses_imported = pool->delivered();
  }
  if (rank_source != nullptr) {
    out.rank_sharing = true;
    out.ranks_published = rank_source->num_updates();
    out.rank_epoch = rank_source->epoch();
    for (const auto& entrant : out.entrants)
      for (const auto& d : entrant.result.per_depth)
        out.rank_refreshes += d.rank_refreshes;
  }
  out.peak_mem_bytes = mem->peak();
  for (const auto& entrant : out.entrants)
    if (entrant.result.mem_limit_hit) out.mem_limit_hit = true;
  return out;
}

BatchReport PortfolioScheduler::run_batch(
    const std::vector<Job>& jobs, double budget_sec,
    const std::atomic<bool>* external_stop) const {
  BatchReport report;
  report.results.resize(jobs.size());
  if (jobs.empty()) return report;

  const int workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(num_threads_),
                            jobs.size()));
  report.num_workers = workers;

  // Shard-group exchange: jobs on the same formula — identical (netlist,
  // property, bad mode, simplify), hence identical tape variable spaces
  // — get one clause pool per group.  Rank sources sub-group further by
  // core weighting (merged scores must mean the same thing to every
  // publisher; clause soundness never depended on it, so the pool group
  // stays whole).  Each engine encodes its own tape, but the encoder is
  // deterministic, so the spaces line up.  Requires rewriting the job
  // configs, so the workers run on a copy.
  std::vector<Job> shared_jobs;
  std::vector<std::unique_ptr<SharedClausePool>> pools;
  std::vector<std::unique_ptr<bmc::SharedRankSource>> rank_sources;
  const std::vector<Job>* run_jobs = &jobs;
  if ((sharing_.enabled || sharing_.rank) && jobs.size() > 1) {
    // The formula fingerprint joins the key: the pool's clauses live in
    // tape space, which preprocessing never renumbers, but members of a
    // group must agree on *which* variables got eliminated or their
    // endpoints would silently drop each other's best lemmas.  The
    // fingerprint covers bad mode, frame-wise simplify and the whole
    // preprocess recipe — the same function the service's result cache
    // keys on, so the two notions of "same formula" cannot drift apart.
    using GroupKey = std::tuple<const model::Netlist*, std::size_t,
                                std::uint64_t>;
    std::map<GroupKey, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const Job& j = jobs[i];
      groups[GroupKey{j.net, j.bad_index, bmc::formula_fingerprint(j.config)}]
          .push_back(i);
    }
    for (const auto& [key, members] : groups) {
      if (members.size() < 2) continue;  // nobody to share with
      if (shared_jobs.empty()) shared_jobs = jobs;
      if (sharing_.enabled) {
        pools.push_back(std::make_unique<SharedClausePool>(
            static_cast<std::size_t>(sharing_.capacity)));
        for (std::size_t p = 0; p < members.size(); ++p) {
          bmc::EngineConfig& cfg = shared_jobs[members[p]].config;
          cfg.share_pool = pools.back().get();
          cfg.share_producer = static_cast<int>(p);
          cfg.solver.share_lbd = sharing_.lbd_max;
          cfg.solver.share_size = sharing_.size_max;
        }
      }
      if (sharing_.rank) {
        std::map<int, std::vector<std::size_t>> by_weighting;
        for (const std::size_t m : members)
          by_weighting[static_cast<int>(shared_jobs[m].config.weighting)]
              .push_back(m);
        for (const auto& [w, twins] : by_weighting) {
          if (twins.size() < 2) continue;
          // Same pays-off demotion as race(): a twin group without two
          // rank-consuming policies leaves everyone on their private
          // LocalRankSource (no exchange to be had).
          std::size_t consumers = 0;
          for (const std::size_t m : twins)
            if (consumes_rank(shared_jobs[m].config.policy)) ++consumers;
          if (!shared_rank_pays_off(sharing_, consumers)) continue;
          rank_sources.push_back(std::make_unique<bmc::SharedRankSource>(
              shared_jobs[twins.front()].config.weighting));
          for (const std::size_t m : twins)
            shared_jobs[m].config.rank_source = rank_sources.back().get();
        }
      }
    }
    if (!shared_jobs.empty()) run_jobs = &shared_jobs;
  }

  // Round-robin seeding spreads the batch evenly; stealing rebalances
  // whatever the initial split gets wrong.
  std::vector<WorkStealingQueue> queues(static_cast<std::size_t>(workers));
  for (std::size_t i = 0; i < jobs.size(); ++i)
    queues[i % static_cast<std::size_t>(workers)].push(i);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::size_t> done{0};
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
  const Deadline deadline(budget_sec);
  Timer timer;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      const std::string tag = "w" + std::to_string(w);
      obs::trace_set_thread_track(tag);
      set_log_thread_tag(tag);
      try {
        WorkerContext ctx;
        ctx.id = w;
        ctx.rng_seed = base_seed_ + static_cast<std::uint64_t>(w);
        ctx.jobs = run_jobs;
        ctx.results = &report.results;
        ctx.queues = &queues;
        ctx.stop = &stop;
        ctx.steals = &steals;
        worker_main(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(w)] = std::current_exception();
        stop.store(true, std::memory_order_release);
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }

  join_with_relay(threads, done, static_cast<std::size_t>(workers),
                  external_stop, budget_sec > 0.0 ? &deadline : nullptr,
                  stop);
  rethrow_first(errors);

  for (std::size_t i = 0; i < report.results.size(); ++i)
    report.results[i].job_index = i;
  report.steals = steals.load();
  report.wall_time_sec = timer.elapsed_sec();
  for (const auto& pool : pools) {
    report.clauses_exported += pool->published();
    report.clauses_imported += pool->delivered();
  }
  for (const auto& ranks : rank_sources)
    report.ranks_published += ranks->num_updates();
  if (!rank_sources.empty())
    for (const auto& r : report.results)
      for (const auto& d : r.result.per_depth)
        report.rank_refreshes += d.rank_refreshes;
  return report;
}

ResolvedPortfolio resolve(const PortfolioConfig& cfg) {
  ResolvedPortfolio r;
  r.num_threads = cfg.num_threads;
  r.seed = cfg.seed;
  for (const std::string& name : cfg.policies) {
    const auto p = bmc::parse_policy(name);
    if (!p)
      throw std::invalid_argument("unknown ordering policy '" + name + "'");
    r.policies.push_back(*p);
  }
  r.engine.max_depth = cfg.max_depth;
  r.engine.incremental = cfg.incremental;
  r.engine.simplify = cfg.simplify;
  r.engine.total_time_limit_sec = cfg.budget_sec;
  const auto decision = sat::parse_decision_mode(cfg.decision);
  if (!decision)
    throw std::invalid_argument("unknown decision mode '" + cfg.decision +
                                "' (expected chaff or evsids)");
  r.engine.solver.decision = *decision;
  r.engine.solver.glue_lbd = cfg.glue_lbd;
  r.engine.solver.tier_lbd = cfg.tier_lbd;
  const auto weighting = bmc::parse_core_weighting(cfg.core_weighting);
  if (!weighting)
    throw std::invalid_argument(
        "unknown core weighting '" + cfg.core_weighting +
        "' (expected linear, uniform, last-only or exp-decay)");
  r.engine.weighting = *weighting;
  r.engine.preprocess.enabled = cfg.preprocess;
  r.engine.preprocess.bve_budget = cfg.bve_budget;
  // Vivification rides the same switch: `--preprocess off` must restore
  // the PR 6 pipeline bit for bit, inprocessing included.  The interval
  // itself applies to scratch and incremental sessions alike; when the
  // user asked for it explicitly and --preprocess off overrides it, say
  // so — a set knob must never be dropped silently.
  if (!cfg.preprocess && cfg.vivify_interval_set && cfg.vivify_interval > 0)
    REFBMC_WARN() << "--vivify-interval " << cfg.vivify_interval
                  << " ignored: --preprocess off disables inprocessing "
                     "(bit-identity with the unpreprocessed pipeline)";
  r.engine.solver.inprocess.vivify_interval =
      cfg.preprocess ? cfg.vivify_interval : 0;
  // Scratch engines clear this themselves (solver_config_for_policy);
  // the knob reaches only incremental sessions.
  r.engine.solver.assumption_savepoint = cfg.assumption_savepoint;
  r.engine.mem_ceiling_bytes =
      static_cast<std::uint64_t>(cfg.mem_ceiling_mb) * 1024 * 1024;
  r.engine.tape_cold = cfg.tape_cold;
  r.sharing.enabled = cfg.share;
  r.sharing.lbd_max = cfg.share_lbd;
  r.sharing.size_max = cfg.share_size;
  r.sharing.capacity = cfg.share_cap;
  r.sharing.rank = cfg.share_rank;
  return r;
}

}  // namespace refbmc::portfolio
