// Parallel portfolio scheduler — the seam between one-solver BMC and a
// production service.  Two modes:
//
//   * race(net, bad, base, policies): the paper shows the refined
//     ordering wins on *most* instances, not all (Table 1 has losing
//     rows).  Racing the ordering policies on the same instance turns
//     "usually faster" into "as fast as the best, always": each policy
//     runs on its own thread against a shared cancellation flag, and the
//     first definitive verdict (counter-example or bound reached) wins
//     and cancels the rest.  Verdicts are objective, so whichever policy
//     wins, the answer equals every single-policy run.
//
//   * run_batch(jobs): shards a multi-property / multi-model workload —
//     one Job per (netlist, bad_index) — across a work-stealing pool and
//     aggregates the per-job BmcResults into a BatchReport.
//
// Both modes rely on the cooperative stop flag threaded through
// sat::Solver (conflict/restart/decision boundaries) and bmc::BmcEngine
// (per-depth), so cancellation latency is bounded by one BCP pass.
//
// Races are encode-once: the instance is encoded into one SharedTape and
// every entrant's solver is fed by replaying it, so race startup does one
// frame encoding per depth instead of one per (depth, policy).
//
// Races (and shard groups solving the same formula) also share lemmas:
// every entrant publishes its short / low-LBD learnts into one
// SharedClausePool and imports the others' at restart boundaries, so the
// diversity the race creates compounds instead of being re-derived P
// times (see clause_pool.hpp; SharingConfig below tunes the filter).
//
// And they share the refined ORDERING the same way: the paper's whole
// point is that earlier cores sharpen later decision orderings, so the
// scheduler gives each race / shard group one SharedRankSource
// (model-node-space score map, see bmc/rank_source.hpp) — every entrant
// publishes the cores it proves and refreshes its rank feed mid-solve
// when rivals advance the accumulation, instead of re-learning the
// ordering from scratch P times.
#pragma once

#include <string>
#include <vector>

#include "portfolio/clause_pool.hpp"
#include "portfolio/job.hpp"
#include "portfolio/worker.hpp"
#include "util/options.hpp"

namespace refbmc::portfolio {

/// Exchange knobs (the CLI's --share* family): lemma sharing and
/// ordering sharing, independently switchable.  With `enabled` false no
/// clause pool is created; with `rank` false every engine keeps its
/// private CoreRanking; with both off every run is bit-identical to the
/// exchange-free scheduler.
struct SharingConfig {
  bool enabled = true;
  /// Export filter: a learnt is published when lbd <= lbd_max OR size <=
  /// size_max (SolverConfig::share_lbd / share_size).
  int lbd_max = 4;
  int size_max = 2;
  /// Ring capacity of each pool, in clauses (--share-cap).
  int capacity = 4096;
  /// Ordering exchange (--share-rank): entrants of a race (and shard
  /// twins on the same formula) publish unsat cores into one
  /// SharedRankSource and refresh their solvers' rank feed mid-solve.
  ///
  /// Even when on, the scheduler only materialises a shared source when
  /// it can pay off: at least two entrants whose policy actually
  /// consumes the rank feed (Static / Dynamic / Replace), on a machine
  /// with more than one hardware thread.  A lineup like {Static, Evsids}
  /// has nobody to exchange WITH — the lone consumer falls back to its
  /// engine-private LocalRankSource, which accumulates the same scores
  /// without the shared source's mutex/epoch machinery on the solve path.
  bool rank = true;
  /// Test hook: create the shared source whenever `rank` is on,
  /// bypassing the pays-off demotion above (single-core CI runners would
  /// otherwise never exercise the exchange).
  bool rank_force = false;
};

/// Outcome of one race.  `entrants` line up with the policy list passed
/// in (losers carry Status::ResourceLimit results).
struct RaceResult {
  std::vector<JobResult> entrants;
  int winner = -1;  // index into entrants; -1 when nobody finished
  double wall_time_sec = 0.0;
  /// Frames encoded by the race's shared formula tape: exactly one per
  /// depth any entrant reached, independent of the number of policies
  /// (the encode-once guarantee, asserted by tests).
  std::uint64_t frames_encoded = 0;
  /// Lemma-sharing pool counters (zero when sharing was off): clauses
  /// accepted into the race's pool, and clause copies handed to
  /// importing entrants.  NB: clauses_imported here counts pool
  /// *deliveries* — a scratch entrant re-imports the live ring into each
  /// depth's fresh solver, so this is larger than the per-depth
  /// DepthStats::clauses_imported sums, which count only clauses a
  /// solver actually attached after root simplification.
  bool sharing = false;
  std::uint64_t clauses_exported = 0;
  std::uint64_t clauses_imported = 0;
  /// Ordering-exchange counters (zero when rank sharing was off): cores
  /// published into the race's SharedRankSource across all entrants, the
  /// mid-solve rank refreshes their solvers applied, and the source's
  /// final accumulation epoch (distinct score states reached — a merge
  /// that changed nothing does not advance it).
  bool rank_sharing = false;
  std::uint64_t ranks_published = 0;
  std::uint64_t rank_refreshes = 0;
  std::uint64_t rank_epoch = 0;
  /// Cancellation latency in microseconds: from the winner's verdict
  /// (its winner-CAS success) to the LAST losing entrant actually
  /// stopping.  The observable cost of "cancel the rest" — bounded by
  /// one BCP pass plus a conflict/decision check interval.  Zero when
  /// the race had no winner or only one entrant.  Measured on the
  /// obs::monotonic_now_us axis; available whether or not tracing is on.
  std::uint64_t cancel_latency_us = 0;
  /// Formula-state memory over the race: high-water mark of the shared
  /// tracker (tape + every entrant's arena / watcher heap / pool ring),
  /// and whether the race ended on a ceiling breach rather than a
  /// verdict or timeout.
  std::uint64_t peak_mem_bytes = 0;
  bool mem_limit_hit = false;

  bool has_winner() const { return winner >= 0; }
  const JobResult& winning() const;
  /// The race verdict: the winner's status, or ResourceLimit when every
  /// entrant was cut off (budget exhausted / externally cancelled).
  bmc::BmcResult::Status status() const;
};

/// The default racing lineup: the four policies the paper and its
/// related work put head to head (Replace is §3.3's passed-over
/// alternative and is left out, matching the paper's evaluation).
std::vector<bmc::OrderingPolicy> default_race_policies();

class PortfolioScheduler {
 public:
  /// `num_threads` sizes the sharding pool; races use one thread per
  /// entrant policy.  `base_seed` fixes the per-worker RNG seeds
  /// (worker w gets base_seed + w), keeping victim selection
  /// reproducible — and with it, when sharing is off, the whole batch.
  /// `sharing` tunes lemma and ordering exchange (both default on;
  /// exchange timing is scheduling-dependent, so per-job solver stats
  /// then vary run to run while verdicts stay objective.  SharingConfig
  /// with `enabled` and `rank` both false restores the
  /// independent-solver scheduler bit for bit).
  explicit PortfolioScheduler(int num_threads, std::uint64_t base_seed = 1,
                              SharingConfig sharing = {});

  int num_threads() const { return num_threads_; }
  const SharingConfig& sharing() const { return sharing_; }

  /// Races `policies` on property `bad_index` of `net`.  `base` supplies
  /// everything but the policy (depth, limits, incremental mode...); its
  /// `stop` hook, when set, cancels the whole race from outside.  When
  /// `base.rank_source` is non-null the race exchanges orderings through
  /// THAT source instead of creating its own — the serving layer's
  /// warm-start seam (seed it, race, snapshot it back).
  RaceResult race(const model::Netlist& net, std::size_t bad_index,
                  const bmc::EngineConfig& base,
                  const std::vector<bmc::OrderingPolicy>& policies =
                      default_race_policies()) const;

  /// Runs `jobs` across the pool with work stealing.  `budget_sec > 0`
  /// bounds the batch wall-clock: on expiry in-flight engines are
  /// cancelled and unstarted jobs are reported as ResourceLimit.
  /// `external_stop`, when non-null, cancels the batch the same way from
  /// outside (the pool overrides each job's own EngineConfig::stop, so
  /// this is the one cancellation hook for a batch).
  BatchReport run_batch(const std::vector<Job>& jobs,
                        double budget_sec = -1.0,
                        const std::atomic<bool>* external_stop =
                            nullptr) const;

 private:
  int num_threads_;
  std::uint64_t base_seed_;
  SharingConfig sharing_;
};

/// PortfolioConfig (CLI layer) resolved against the bmc types: policy
/// names parsed (std::invalid_argument on unknown), engine defaults
/// filled in.  The single translation point between `util` and here.
struct ResolvedPortfolio {
  std::vector<bmc::OrderingPolicy> policies;
  bmc::EngineConfig engine;  // max_depth / incremental / budget applied
  int num_threads = 1;
  std::uint64_t seed = 1;
  SharingConfig sharing;  // --share* family incl. --share-rank
};
ResolvedPortfolio resolve(const PortfolioConfig& cfg);

}  // namespace refbmc::portfolio
