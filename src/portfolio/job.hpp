// Portfolio work units.
//
// A Job is one self-contained BMC problem: a (netlist, bad_index) pair
// plus the engine configuration to check it with.  Jobs are the currency
// of both scheduler modes:
//
//   * race  — the same (netlist, bad_index) instance expanded into one
//             job per ordering policy, run concurrently, first definitive
//             verdict wins;
//   * shard — a multi-property / multi-model batch expanded into one job
//             per (netlist, bad_index), distributed over the worker pool.
//
// Jobs hold a *pointer* to the netlist: the caller owns the models and
// must keep them alive until the scheduler returns.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "bmc/engine.hpp"
#include "model/netlist.hpp"

namespace refbmc::portfolio {

struct Job {
  const model::Netlist* net = nullptr;  // not owned; must outlive the run
  std::size_t bad_index = 0;
  std::string name;  // label for reports (model name, property name, ...)
  bmc::EngineConfig config;
};

/// Outcome of one executed job.
struct JobResult {
  std::string name;
  std::size_t job_index = 0;  // position in the submitted batch
  std::size_t bad_index = 0;
  bmc::OrderingPolicy policy = bmc::OrderingPolicy::Baseline;
  bmc::BmcResult result;
  double wall_time_sec = 0.0;
  int worker_id = -1;  // thread that executed the job (-1 = caller)
};

inline const char* to_string(bmc::BmcResult::Status s) {
  switch (s) {
    case bmc::BmcResult::Status::CounterexampleFound: return "cex";
    case bmc::BmcResult::Status::BoundReached: return "bound";
    case bmc::BmcResult::Status::ResourceLimit: return "limit";
  }
  REFBMC_ASSERT_MSG(false, "invalid BmcResult::Status value");
}

/// Runs `job` to completion (or cancellation) on the calling thread.
/// When `stop` is non-null it *replaces* the job's own
/// EngineConfig::stop, so a scheduler-owned flag can cut every engine in
/// a pool at once — to cancel a whole batch from outside, pass the flag
/// to PortfolioScheduler::run_batch instead of into each job.
JobResult run_job(const Job& job, const std::atomic<bool>* stop = nullptr);

/// One job per bad property of `net` — the multi-property sharding unit.
/// Job names are `<name_prefix>/<property name or index>`.
std::vector<Job> shard_properties(const model::Netlist& net,
                                  const bmc::EngineConfig& base,
                                  const std::string& name_prefix = "net");

/// Aggregate of a sharded batch.  `results` is indexed like the submitted
/// job vector regardless of which worker ran what, so batch output is
/// deterministic even though scheduling is not.
struct BatchReport {
  std::vector<JobResult> results;
  double wall_time_sec = 0.0;
  int num_workers = 0;
  std::uint64_t steals = 0;  // jobs a worker took from another's queue
  /// Lemma-sharing totals over the batch's shard-group pools — jobs on
  /// the same (netlist, property, bad mode, simplify) formula exchange
  /// clauses; zero when sharing is off or every group is a singleton.
  /// clauses_imported counts pool deliveries (scratch solvers re-import
  /// per depth), not solver attachments — see RaceResult for the same
  /// distinction.
  std::uint64_t clauses_exported = 0;
  std::uint64_t clauses_imported = 0;
  /// Ordering-exchange totals over the batch's shard-group rank sources
  /// (zero when rank sharing is off or every group is a singleton):
  /// cores published into the shared accumulations, and mid-solve rank
  /// refreshes the member solvers applied.
  std::uint64_t ranks_published = 0;
  std::uint64_t rank_refreshes = 0;

  std::size_t count(bmc::BmcResult::Status s) const;
  std::size_t counterexamples() const {
    return count(bmc::BmcResult::Status::CounterexampleFound);
  }
  std::size_t bounds_reached() const {
    return count(bmc::BmcResult::Status::BoundReached);
  }
  std::size_t resource_limits() const {
    return count(bmc::BmcResult::Status::ResourceLimit);
  }
  /// Sum of per-job wall times: the sequential-equivalent cost the pool
  /// compressed into `wall_time_sec`.
  double total_job_time_sec() const;
};

}  // namespace refbmc::portfolio
