// Portfolio lemma sharing: LBD-filtered clause exchange between racing
// solvers.
//
// The race (PR 1) buys diversity — five decision orderings explore the
// same instance differently — but each entrant re-derives every lemma
// from scratch.  SharedClausePool turns that diversity into raw speed:
// short / low-LBD learned clauses (the quality signal PR 3's ClauseDB
// already computes) are published into a fixed-capacity ring buffer and
// re-attached by every other entrant as learned-tier clauses.
//
// Variable spaces.  Entrants number solver variables differently (an
// incremental session interleaves activation guards; scratch sessions
// restart numbering per depth), so clauses cross the pool in *tape
// space* — the variable numbering of the race's SharedTape, which every
// entrant replays.  A PoolEndpoint owns the two maps per entrant:
//
//     solver var -> tape var   (export: clauses over unshared variables,
//                               e.g. activation guards, are refused —
//                               exactly the clauses that are NOT implied
//                               by the shared formula alone)
//     tape var -> solver var   (import: clauses over frames this entrant
//                               has not replayed yet are parked and
//                               retried after the next replay)
//
// Soundness.  A clause is only published when every variable maps to the
// tape.  Because no clause in any entrant ever contains a *positive*
// activation-guard literal, resolution can never eliminate a guard from
// a learnt, so a guard-free learnt is derivable from tape clauses alone;
// and the tape is a definitional extension frame by frame (transitions
// are functional), so a tape-implied clause over frames 0..j is sound
// for any entrant that has replayed those frames — even one solving a
// shallower depth.  Sharing therefore never changes a verdict.
// (Scratch sessions assert the per-depth property as an *assumption*
// instead of a unit clause while sharing, keeping the clause database
// tape-implied; see session.cpp.)
//
// Concurrency.  Publishing copies the clause into the ring under a
// mutex; consumers keep their own sequence cursor and peek for news with
// a single relaxed-ish atomic load (has_new), taking the mutex only when
// there is something to drain — imports stay wait-light at every restart.
// close() is the cooperative epoch: once a race has a winner, cancelled
// losers stop publishing into a pool nobody will read.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "sat/solver.hpp"
#include "sat/types.hpp"
#include "util/mem_tracker.hpp"

namespace refbmc::portfolio {

class SharedClausePool {
 public:
  /// One shared clause, in tape-space literals.
  struct PoolClause {
    std::vector<sat::Lit> lits;
    std::uint32_t lbd = 0;
    int producer = -1;
  };

  explicit SharedClausePool(std::size_t capacity = 4096);
  ~SharedClausePool();

  SharedClausePool(const SharedClausePool&) = delete;
  SharedClausePool& operator=(const SharedClausePool&) = delete;

  /// Ring heap (slot literal buffers) is charged here (may be null);
  /// bytes already held move to the new tracker.  Thread-safe.
  void set_mem_tracker(MemTracker* tracker);

  std::size_t capacity() const { return capacity_; }

  /// Publishes a clause into the ring (overwriting the oldest entry when
  /// full).  Returns false — and stores nothing — once close()d, so
  /// callers can keep their accepted-count coherent with published().
  /// Thread-safe.
  bool publish(std::span<const sat::Lit> tape_lits, std::uint32_t lbd,
               int producer);

  /// Entries newer than `cursor` exist?  Lock-free — the per-restart
  /// fast path of every consumer.
  bool has_new(std::uint64_t cursor) const {
    return head_.load(std::memory_order_acquire) > cursor;
  }

  /// Copies every live entry with sequence >= cursor into `out`
  /// (skipping the consumer's own), advances `cursor` to the head, and
  /// returns how many entries were lost to ring overwrites before this
  /// consumer got to them.  `seen_upto` is the consumer's high-water
  /// mark: entries below it were already read once and are not counted
  /// as lost even when the cursor was deliberately rewound (scratch
  /// rebind).  Thread-safe.
  std::uint64_t fetch(std::uint64_t& cursor, int consumer,
                      std::vector<PoolClause>& out,
                      std::uint64_t seen_upto);
  std::uint64_t fetch(std::uint64_t& cursor, int consumer,
                      std::vector<PoolClause>& out) {
    return fetch(cursor, consumer, out, cursor);
  }

  /// Cooperative epoch: stops all publishing (a race has a winner, the
  /// losers are winding down).  Irreversible for this pool.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  // -- counters (the exported/imported balance the tests assert) ---------
  /// Clauses accepted into the ring.
  std::uint64_t published() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Clause copies actually handed to an importing solver (counted by
  /// the endpoints at sink hand-off, not at fetch — parked or
  /// still-untranslatable clauses don't inflate it; a clause published
  /// to P peers counts once per peer that landed it).
  std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_acquire);
  }
  /// Endpoint callback backing delivered().
  void note_delivered() {
    delivered_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Entries that aged out of the ring before some consumer read them.
  std::uint64_t overwritten() const {
    return overwritten_.load(std::memory_order_acquire);
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<PoolClause> ring_;  // slot = seq % capacity_
  std::size_t charged_ = 0;       // ring heap bytes pushed to mem_ (under mu_)
  MemTracker* mem_ = nullptr;     // guarded by mu_
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> overwritten_{0};
  std::atomic<bool> closed_{false};
};

/// One entrant's connection to the pool: the sat::ClauseExchange the
/// solver calls, plus the tape-space translation.  Owned by the entrant's
/// FormulaSession; single-threaded apart from the pool calls.
class PoolEndpoint final : public sat::ClauseExchange {
 public:
  /// `producer` identifies this entrant in the pool (its own clauses are
  /// never handed back to it).
  PoolEndpoint(SharedClausePool& pool, int producer);

  /// Extends the variable maps from a replay cursor's tape->solver map
  /// (bmc::ClauseTape::Cursor::var_map).  Mappings are append-only; call
  /// after every replay.
  void sync_vars(const std::vector<sat::Var>& tape_to_solver);

  /// A fresh solver took over (scratch session, next depth): clears the
  /// maps and rewinds the cursor so the ring's live lemmas are imported
  /// into the new solver from the start.
  void rebind();

  // -- sat::ClauseExchange ----------------------------------------------
  bool export_clause(std::span<const sat::Lit> lits,
                     std::uint32_t lbd) override;
  bool has_pending() const override {
    // Parked clauses failed translation against the map as of
    // parked_map_size_; retrying them is pointless until a replay grows
    // the map past that point.
    return (!parked_.empty() &&
            tape_to_solver_.size() > parked_map_size_) ||
           pool_.has_new(cursor_);
  }
  void import_clauses(ImportSink& sink) override;

  // -- introspection -----------------------------------------------------
  std::uint64_t published() const { return published_; }
  std::uint64_t imported() const { return imported_; }
  /// Export attempts refused because a literal's variable has no tape
  /// counterpart (activation guards and other solver-local variables).
  std::uint64_t rejected_unmapped() const { return rejected_unmapped_; }
  /// Imports dropped because this consumer's preprocessing eliminated a
  /// variable the clause mentions (the lemma stays valid for everyone
  /// else; it just has no image in this solver's simplified space).
  std::uint64_t dropped_eliminated() const { return dropped_eliminated_; }

 private:
  /// Translates `pc` into solver space and hands it to `sink`; parks it
  /// when it mentions frames not replayed yet.
  void deliver(const SharedClausePool::PoolClause& pc, ImportSink& sink);

  SharedClausePool& pool_;
  int producer_;
  std::uint64_t cursor_ = 0;
  std::uint64_t seen_upto_ = 0;  // high-water fetch mark (survives rebind)
  std::vector<sat::Var> tape_to_solver_;
  std::vector<sat::Var> solver_to_tape_;
  std::vector<SharedClausePool::PoolClause> parked_;  // ahead of our frames
  std::size_t parked_map_size_ = 0;  // map size the parked set failed against
  std::vector<SharedClausePool::PoolClause> fetch_buf_;
  std::vector<sat::Lit> lit_buf_;
  std::uint64_t published_ = 0;
  std::uint64_t imported_ = 0;
  std::uint64_t rejected_unmapped_ = 0;
  std::uint64_t dropped_eliminated_ = 0;
};

}  // namespace refbmc::portfolio
