#include "portfolio/job.hpp"

#include "util/assert.hpp"
#include "util/timer.hpp"

namespace refbmc::portfolio {

JobResult run_job(const Job& job, const std::atomic<bool>* stop) {
  REFBMC_EXPECTS_MSG(job.net != nullptr, "job has no netlist");
  REFBMC_EXPECTS_MSG(job.bad_index < job.net->bad_properties().size(),
                     "job bad_index out of range");
  bmc::EngineConfig cfg = job.config;
  if (stop != nullptr) cfg.stop = stop;

  JobResult out;
  out.name = job.name;
  out.bad_index = job.bad_index;
  out.policy = cfg.policy;

  Timer timer;
  bmc::BmcEngine engine(*job.net, cfg, job.bad_index);
  out.result = engine.run();
  out.wall_time_sec = timer.elapsed_sec();
  return out;
}

std::vector<Job> shard_properties(const model::Netlist& net,
                                  const bmc::EngineConfig& base,
                                  const std::string& name_prefix) {
  std::vector<Job> jobs;
  const auto& bads = net.bad_properties();
  for (std::size_t i = 0; i < bads.size(); ++i) {
    Job job;
    job.net = &net;
    job.bad_index = i;
    job.name = name_prefix + "/" +
               (bads[i].name.empty() ? std::to_string(i) : bads[i].name);
    job.config = base;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::size_t BatchReport::count(bmc::BmcResult::Status s) const {
  std::size_t n = 0;
  for (const auto& r : results) n += (r.result.status == s) ? 1 : 0;
  return n;
}

double BatchReport::total_job_time_sec() const {
  double t = 0.0;
  for (const auto& r : results) t += r.wall_time_sec;
  return t;
}

}  // namespace refbmc::portfolio
