// Cycle-accurate two-valued simulation of a Netlist.
//
// Used to (a) validate counter-example traces produced by BMC (replay the
// inputs and confirm the bad signal fires at the reported depth), (b) run
// random simulation in tests, and (c) cross-check the CNF unrolling
// semantics against direct circuit evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "model/netlist.hpp"
#include "util/rng.hpp"

namespace refbmc::sim {

/// One frame of stimulus: values for every primary input, in the order of
/// Netlist::inputs().
using InputFrame = std::vector<bool>;

class Simulator {
 public:
  explicit Simulator(const model::Netlist& net);

  /// Resets latches to their initial values; latches with l_Undef init take
  /// the corresponding value from `free_init` (order of Netlist::latches();
  /// an empty vector means all-zero for unconstrained latches).
  void reset(const std::vector<bool>& free_init = {});

  /// Evaluates the combinational fanout of the current state under `inputs`
  /// and advances all latches one step.
  void step(const InputFrame& inputs);

  /// Evaluates combinationally under `inputs` without advancing state
  /// (e.g. to probe outputs/bad in the current cycle).
  void evaluate(const InputFrame& inputs);

  /// Value of a signal after the last evaluate()/step().
  bool value(model::Signal s) const;

  /// Current latch state (order of Netlist::latches()).
  std::vector<bool> latch_state() const;

  /// Convenience: packs the latch state into a word (latch i → bit i).
  /// Requires at most 64 latches.
  std::uint64_t latch_state_bits() const;

  std::size_t cycle() const { return cycle_; }

  /// Random stimulus helper.
  InputFrame random_inputs(Rng& rng) const;

 private:
  void eval_combinational();

  const model::Netlist& net_;
  std::vector<char> node_val_;    // per node, valid after eval
  std::vector<bool> latch_val_;   // current state, order of latches()
  std::size_t cycle_ = 0;
};

}  // namespace refbmc::sim
