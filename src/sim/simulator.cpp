#include "sim/simulator.hpp"

#include "util/assert.hpp"

namespace refbmc::sim {

using model::NodeId;
using model::NodeKind;
using model::Signal;

Simulator::Simulator(const model::Netlist& net) : net_(net) {
  node_val_.resize(net_.num_nodes(), 0);
  latch_val_.resize(net_.num_latches(), false);
  reset();
}

void Simulator::reset(const std::vector<bool>& free_init) {
  const auto& latches = net_.latches();
  for (std::size_t i = 0; i < latches.size(); ++i) {
    const sat::lbool init = net_.latch_init(latches[i]);
    if (init.is_undef()) {
      latch_val_[i] = i < free_init.size() ? free_init[i] : false;
    } else {
      latch_val_[i] = init.is_true();
    }
  }
  cycle_ = 0;
  // Make value() meaningful before the first evaluate(): all-zero inputs.
  evaluate(InputFrame(net_.num_inputs(), false));
}

void Simulator::eval_combinational() {
  // AND fanins always precede the node, so one id-order pass suffices;
  // inputs and latch outputs were written by the caller.
  node_val_[model::kConstNode] = 0;
  for (NodeId id = 1; id < net_.num_nodes(); ++id) {
    const model::Node& n = net_.node(id);
    if (n.kind != NodeKind::And) continue;
    const bool a =
        (node_val_[n.fanin0.node()] != 0) != n.fanin0.negated();
    const bool b =
        (node_val_[n.fanin1.node()] != 0) != n.fanin1.negated();
    node_val_[id] = (a && b) ? 1 : 0;
  }
}

void Simulator::evaluate(const InputFrame& inputs) {
  REFBMC_EXPECTS_MSG(inputs.size() == net_.num_inputs(),
                     "input frame size mismatch");
  const auto& in_ids = net_.inputs();
  for (std::size_t i = 0; i < in_ids.size(); ++i)
    node_val_[in_ids[i]] = inputs[i] ? 1 : 0;
  const auto& latch_ids = net_.latches();
  for (std::size_t i = 0; i < latch_ids.size(); ++i)
    node_val_[latch_ids[i]] = latch_val_[i] ? 1 : 0;
  eval_combinational();
}

void Simulator::step(const InputFrame& inputs) {
  evaluate(inputs);
  const auto& latch_ids = net_.latches();
  std::vector<bool> next(latch_ids.size());
  for (std::size_t i = 0; i < latch_ids.size(); ++i)
    next[i] = value(net_.latch_next(latch_ids[i]));
  latch_val_ = std::move(next);
  ++cycle_;
}

bool Simulator::value(Signal s) const {
  return (node_val_[s.node()] != 0) != s.negated();
}

std::vector<bool> Simulator::latch_state() const { return latch_val_; }

std::uint64_t Simulator::latch_state_bits() const {
  REFBMC_EXPECTS(latch_val_.size() <= 64);
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < latch_val_.size(); ++i)
    if (latch_val_[i]) bits |= (1ull << i);
  return bits;
}

InputFrame Simulator::random_inputs(Rng& rng) const {
  InputFrame f(net_.num_inputs());
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = rng.next_bool();
  return f;
}

}  // namespace refbmc::sim
