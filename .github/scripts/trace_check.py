#!/usr/bin/env python3
"""Validate a Chrome-trace-event JSON file produced by --trace.

Usage: trace_check.py <trace.json> [--min-solver-tracks N]

Checks the invariants the exporter promises (and Perfetto relies on):

  * the document parses and has a traceEvents array;
  * every event has ph in {X, i, M}, a numeric ts >= 0 (metadata
    records excepted) and, for spans, a numeric dur >= 0;
  * every tid that carries events also carries exactly one thread_name
    metadata record with a non-empty name (names may repeat across
    tids: a multi-model session names each race's entrant tracks after
    the same policies — the tid keeps them apart);
  * within each tid, start timestamps are non-decreasing in file
    order — the exporter emits every track sorted by ts (spans may be
    recorded retroactively, so ring order alone would not do);
  * --min-solver-tracks N: at least N named tracks besides the driver
    (a race with K entrants must produce K solver tracks).

Exits nonzero on the first class of violation found, printing every
instance, so CI logs show the full picture rather than one sample.
"""

import argparse
import json
import sys


def fail(errors):
    for e in errors:
        print(f"trace_check: FAIL: {e}", file=sys.stderr)
    return 1


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--min-solver-tracks", type=int, default=0,
                    help="require at least N non-driver tracks")
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail([f"cannot parse {args.trace}: {e}"])

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail([f"{args.trace} has no traceEvents array"])

    errors = []
    names = {}        # tid -> track name (from thread_name metadata)
    last_point = {}   # tid -> last record point seen, in file order
    event_tids = set()

    for i, e in enumerate(events):
        where = f"event #{i}"
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") != "thread_name":
                continue
            tid = e.get("tid")
            name = (e.get("args") or {}).get("name")
            if not name:
                errors.append(f"{where}: thread_name metadata without a name")
            elif tid in names:
                errors.append(f"{where}: duplicate thread_name for tid {tid}")
            else:
                names[tid] = name
            continue
        if ph not in ("X", "i"):
            errors.append(f"{where}: unexpected ph {ph!r}")
            continue
        tid = e.get("tid")
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: span with bad dur {dur!r}")
                continue
        event_tids.add(tid)
        prev = last_point.get(tid)
        if prev is not None and ts < prev:
            errors.append(
                f"{where}: ts went backwards on tid {tid} "
                f"({ts} < {prev})")
        last_point[tid] = ts

    for tid in sorted(event_tids, key=str):
        if tid not in names:
            errors.append(f"tid {tid} carries events but has no "
                          f"thread_name metadata")

    solver_tracks = sum(1 for n in names.values() if n != "driver")
    if solver_tracks < args.min_solver_tracks:
        errors.append(f"expected >= {args.min_solver_tracks} solver tracks, "
                      f"found {solver_tracks} ({sorted(names.values())})")

    if errors:
        return fail(errors)
    print(f"trace_check: OK: {len(events)} records, "
          f"{len(names)} named tracks "
          f"({', '.join(sorted(set(names.values())))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
