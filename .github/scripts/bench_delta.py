#!/usr/bin/env python3
"""Bench trajectory delta: compare this run's BENCH_*.json against the
previous successful run's and emit a GitHub-flavored-markdown summary.

Usage: bench_delta.py <previous-dir> <current-dir>

Always exits 0 — regressions produce ::warning annotations, not
failures: CI runners are noisy shared boxes, and the trajectory is a
signal to read, not a gate.  Headline metrics compared:

  BENCH_solver.json     props/sec per suite row (solver-core throughput)
  BENCH_portfolio.json  race-setup encode-once speedup, total race
                        ratios, lemma-sharing and rank-sharing counters

Missing files / keys degrade to "n/a" so the very first run (empty
trajectory) still prints a table that later runs can diff against.
"""

import json
import os
import sys

REGRESSION_TOLERANCE = 0.90  # warn when current < 90% of previous


def load(dirname, filename):
    path = os.path.join(dirname, filename)
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return None


def fmt(v):
    if v is None:
        return "n/a"
    if isinstance(v, float):
        return f"{v:,.3f}" if abs(v) < 1000 else f"{v:,.0f}"
    return f"{v:,}"


def delta(prev, cur):
    if prev is None or cur is None or not prev:
        return "n/a"
    ratio = cur / prev
    arrow = "+" if ratio >= 1 else ""
    return f"{arrow}{(ratio - 1) * 100:.1f}%"


def warn(msg):
    print(f"::warning::{msg}", file=sys.stderr)


def solver_rows(doc):
    """props/sec per row of BENCH_solver.json (schema: rows: [{name, ...,
    props_per_sec}]), tolerating older/partial schemas."""
    out = {}
    if not isinstance(doc, dict):
        return out
    for row in doc.get("rows", []) or []:
        if isinstance(row, dict) and "name" in row:
            out[str(row["name"])] = row.get("props_per_sec")
    totals = doc.get("totals")
    if isinstance(totals, dict) and "props_per_sec" in totals:
        out["TOTAL"] = totals.get("props_per_sec")
    return out


def main():
    if len(sys.argv) != 3:
        print("usage: bench_delta.py <previous-dir> <current-dir>",
              file=sys.stderr)
        return 0
    prev_dir, cur_dir = sys.argv[1], sys.argv[2]

    print("## Bench trajectory")
    print()

    # ---- solver core: props/sec per suite row ---------------------------
    prev_solver = load(prev_dir, "BENCH_solver.json")
    cur_solver = load(cur_dir, "BENCH_solver.json")
    prev_rows = solver_rows(prev_solver)
    cur_rows = solver_rows(cur_solver)
    if cur_rows:
        print("### Solver core (props/sec)")
        print()
        print("| model | previous | current | delta |")
        print("|---|---:|---:|---:|")
        for name, cur_v in cur_rows.items():
            prev_v = prev_rows.get(name)
            print(f"| {name} | {fmt(prev_v)} | {fmt(cur_v)} "
                  f"| {delta(prev_v, cur_v)} |")
            if (prev_v and cur_v and
                    cur_v < prev_v * REGRESSION_TOLERANCE):
                warn(f"props/sec regression on {name}: "
                     f"{prev_v:,.0f} -> {cur_v:,.0f}")
        print()
    else:
        print("_no BENCH_solver.json rows in the current run_")
        print()

    # ---- portfolio: race setup + totals + sharing -----------------------
    prev_p = load(prev_dir, "BENCH_portfolio.json") or {}
    cur_p = load(cur_dir, "BENCH_portfolio.json") or {}
    if cur_p:
        metrics = [
            ("race-setup encode-once speedup",
             lambda d: (d.get("race_setup") or {}).get("speedup"), True),
            ("total race ratio vs best single policy",
             lambda d: d.get("total_ratio"), False),
            ("sharing race ratio vs plain race",
             lambda d: d.get("total_share_ratio_vs_plain"), False),
            ("lemmas exported (sharing races)",
             lambda d: d.get("total_clauses_exported"), None),
            ("lemmas imported (sharing races)",
             lambda d: d.get("total_clauses_imported"), None),
            # rank_* counters arrived after the sharing ones; artifacts
            # from older runs simply lack the keys and print "n/a".
            ("rank-sharing race ratio vs lemma-only race",
             lambda d: d.get("total_rank_ratio_vs_share"), False),
            ("cores published (rank-sharing races)",
             lambda d: d.get("total_ranks_published"), None),
            ("rank refreshes (rank-sharing races)",
             lambda d: d.get("total_rank_refreshes"), None),
            # Cancel latency (verdict -> last loser stopped) is reported
            # informationally: microsecond wall times on shared runners
            # are too noisy to gate on.
            ("max cancel latency, us (all races)",
             lambda d: d.get("max_cancel_latency_us"), None),
            # preprocess_* keys arrived with the tape-preprocessing PR;
            # older artifacts lack them and print "n/a".
            ("vars eliminated (preprocess)",
             lambda d: d.get("total_vars_eliminated"), None),
            ("clauses subsumed (preprocess)",
             lambda d: d.get("total_clauses_subsumed"), None),
            ("preprocess time, us (suite)",
             lambda d: d.get("total_preprocess_us"), None),
            ("traced-race retained events",
             lambda d: (d.get("trace") or {}).get("events"), None),
            ("hardware threads on runner",
             lambda d: d.get("hw_threads"), None),
        ]
        print("### Portfolio")
        print()
        print("| metric | previous | current | delta |")
        print("|---|---:|---:|---:|")
        for label, get, higher_is_better in metrics:
            prev_v, cur_v = get(prev_p), get(cur_p)
            print(f"| {label} | {fmt(prev_v)} | {fmt(cur_v)} "
                  f"| {delta(prev_v, cur_v)} |")
            if higher_is_better is None or prev_v is None or cur_v is None:
                continue
            if not prev_v:
                continue
            ratio = cur_v / prev_v
            regressed = (ratio < REGRESSION_TOLERANCE if higher_is_better
                         else ratio > 1 / REGRESSION_TOLERANCE)
            if regressed:
                warn(f"portfolio regression: {label} "
                     f"{fmt(prev_v)} -> {fmt(cur_v)}")
        print()
    else:
        print("_no BENCH_portfolio.json in the current run_")
        print()

    # ---- incremental: fast-path ratios + savepoint/retirement counters --
    prev_i = load(prev_dir, "BENCH_incremental.json") or {}
    cur_i = load(cur_dir, "BENCH_incremental.json") or {}
    if cur_i:
        # BENCH_incremental.json arrived with the incremental fast-path
        # PR; older artifacts lack it and every row prints "n/a".
        metrics = [
            ("fast-path ratio vs plain incremental",
             lambda d: d.get("total_fast_ratio_vs_incremental"), False),
            ("rows with fewer decisions (fast path)",
             lambda d: d.get("rows_decisions_improved"), None),
            ("rows with fewer propagations (fast path)",
             lambda d: d.get("rows_propagations_improved"), None),
            ("rows compared",
             lambda d: d.get("rows_compared"), None),
            ("verdicts all match",
             lambda d: d.get("verdicts_all_match"), None),
        ]
        print("### Incremental fast path")
        print()
        print("| metric | previous | current | delta |")
        print("|---|---:|---:|---:|")
        for label, get, higher_is_better in metrics:
            prev_v, cur_v = get(prev_i), get(cur_i)
            if isinstance(prev_v, bool):
                prev_v = str(prev_v)
            if isinstance(cur_v, bool):
                cur_v = str(cur_v)
            numeric = (isinstance(prev_v, (int, float)) and
                       isinstance(cur_v, (int, float)))
            print(f"| {label} | {fmt(prev_v) if not isinstance(prev_v, str) else prev_v} "
                  f"| {fmt(cur_v) if not isinstance(cur_v, str) else cur_v} "
                  f"| {delta(prev_v, cur_v) if numeric else 'n/a'} |")
            if higher_is_better is None or not numeric or not prev_v:
                continue
            ratio = cur_v / prev_v
            regressed = (ratio < REGRESSION_TOLERANCE if higher_is_better
                         else ratio > 1 / REGRESSION_TOLERANCE)
            if regressed:
                warn(f"incremental regression: {label} "
                     f"{fmt(prev_v)} -> {fmt(cur_v)}")
        # Savepoint hit rate per row — informational (tiny rows solve by
        # propagation alone and legitimately read 0%).
        rows = cur_i.get("rows") or []
        rates = [r.get("savepoint_hit_rate") for r in rows
                 if isinstance(r, dict) and
                 isinstance(r.get("savepoint_hit_rate"), (int, float))]
        if rates:
            print(f"\nmean savepoint hit rate: "
                  f"{100.0 * sum(rates) / len(rates):.1f}%")
        print()
    else:
        print("_no BENCH_incremental.json in the current run_")
        print()

    # ---- service: cache speedup + serving throughput --------------------
    prev_s = load(prev_dir, "BENCH_service.json") or {}
    cur_s = load(cur_dir, "BENCH_service.json") or {}
    if cur_s:
        # BENCH_service.json arrived with the serving-layer PR; older
        # artifacts lack it and every row prints "n/a".
        metrics = [
            ("result-cache speedup (cold / cached round)",
             lambda d: d.get("cache_speedup"), True),
            ("cached jobs/sec (serving pipeline)",
             lambda d: d.get("cached_jobs_per_sec"), True),
            ("dispatch ops/sec (handle_request)",
             lambda d: d.get("dispatch_ops_per_sec"), True),
            ("round-2 submissions all served from cache",
             lambda d: d.get("all_cached"), None),
            ("queue_full rejections in the admission burst",
             lambda d: d.get("burst_rejected_queue_full"), None),
        ]
        print("### Service")
        print()
        print("| metric | previous | current | delta |")
        print("|---|---:|---:|---:|")
        for label, get, higher_is_better in metrics:
            prev_v, cur_v = get(prev_s), get(cur_s)
            if isinstance(prev_v, bool):
                prev_v = str(prev_v)
            if isinstance(cur_v, bool):
                cur_v = str(cur_v)
            numeric = (isinstance(prev_v, (int, float)) and
                       isinstance(cur_v, (int, float)))
            print(f"| {label} "
                  f"| {fmt(prev_v) if not isinstance(prev_v, str) else prev_v} "
                  f"| {fmt(cur_v) if not isinstance(cur_v, str) else cur_v} "
                  f"| {delta(prev_v, cur_v) if numeric else 'n/a'} |")
            if higher_is_better is None or not numeric or not prev_v:
                continue
            ratio = cur_v / prev_v
            regressed = (ratio < REGRESSION_TOLERANCE if higher_is_better
                         else ratio > 1 / REGRESSION_TOLERANCE)
            if regressed:
                warn(f"service regression: {label} "
                     f"{fmt(prev_v)} -> {fmt(cur_v)}")
        print()
    else:
        print("_no BENCH_service.json in the current run_")
        print()

    # ---- memory: codec compression + arena pauses + rank demotion -------
    prev_m = load(prev_dir, "BENCH_memory.json") or {}
    cur_m = load(cur_dir, "BENCH_memory.json") or {}
    if cur_m:
        # BENCH_memory.json arrived with the space-efficiency PR; older
        # artifacts lack it and every row prints "n/a".
        metrics = [
            ("tape codec compression (raw / encoded)",
             lambda d: (d.get("codec_totals") or {}).get("compression"),
             True),
            ("clauses encoded (quick suite)",
             lambda d: (d.get("codec_totals") or {}).get("clauses"), None),
            # Pause tails are informational: microsecond timings on shared
            # runners are too noisy to gate on.
            ("arena chunk-alloc p99, us",
             lambda d: ((d.get("pauses") or {})
                        .get("arena.chunk_alloc_us") or {}).get("p99_us"),
             None),
            ("arena GC pause p99, us",
             lambda d: ((d.get("pauses") or {})
                        .get("arena.gc_pause_us") or {}).get("p99_us"),
             None),
            ("demoted-rank race wall, sec",
             lambda d: ((d.get("rank_row") or {})
                        .get("demoted") or {}).get("wall_sec"), None),
            ("forced-rank race wall, sec",
             lambda d: ((d.get("rank_row") or {})
                        .get("forced") or {}).get("wall_sec"), None),
            ("peak RSS, kB (bench_memory process)",
             lambda d: (d.get("process") or {}).get("vm_hwm_kb"), None),
        ]
        print("### Memory")
        print()
        print("| metric | previous | current | delta |")
        print("|---|---:|---:|---:|")
        for label, get, higher_is_better in metrics:
            prev_v, cur_v = get(prev_m), get(cur_m)
            print(f"| {label} | {fmt(prev_v)} | {fmt(cur_v)} "
                  f"| {delta(prev_v, cur_v)} |")
            if higher_is_better is None or prev_v is None or cur_v is None:
                continue
            if not prev_v:
                continue
            ratio = cur_v / prev_v
            regressed = (ratio < REGRESSION_TOLERANCE if higher_is_better
                         else ratio > 1 / REGRESSION_TOLERANCE)
            if regressed:
                warn(f"memory regression: {label} "
                     f"{fmt(prev_v)} -> {fmt(cur_v)}")
        print()
    else:
        print("_no BENCH_memory.json in the current run_")
        print()

    if not prev_rows and not prev_p and not prev_i:
        print("_previous run had no bench artifacts — "
              "this run seeds the trajectory_")

    return 0


if __name__ == "__main__":
    sys.exit(main())
