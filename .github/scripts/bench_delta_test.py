#!/usr/bin/env python3
"""Unit tests for bench_delta.py.

The one contract that matters for the trajectory job: ANY artifact shape
— missing files, missing keys (e.g. a previous run from before the
rank_* counters existed), empty dirs — must degrade to "n/a" cells and
exit 0, never crash.  Run directly: python3 bench_delta_test.py
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_delta  # noqa: E402


def write_json(dirname, filename, doc):
    with open(os.path.join(dirname, filename), "w") as f:
        json.dump(doc, f)


def run_delta(prev_dir, cur_dir):
    out = io.StringIO()
    argv = sys.argv
    sys.argv = ["bench_delta.py", prev_dir, cur_dir]
    try:
        with redirect_stdout(out):
            rc = bench_delta.main()
    finally:
        sys.argv = argv
    return rc, out.getvalue()


# A current-run portfolio artifact with the full key set, rank_* included.
CURRENT_PORTFOLIO = {
    "total_ratio": 1.1,
    "total_share_ratio_vs_plain": 0.95,
    "total_clauses_exported": 3000,
    "total_clauses_imported": 48000,
    "total_rank_ratio_vs_share": 0.97,
    "total_ranks_published": 120,
    "total_rank_refreshes": 14,
    "race_setup": {"speedup": 5.8},
    "max_cancel_latency_us": 850,
    "total_vars_eliminated": 900,
    "total_clauses_subsumed": 400,
    "total_preprocess_us": 5200,
    "trace": {"events": 4200},
    "hw_threads": 4,
}


class BenchDeltaTest(unittest.TestCase):
    def test_empty_dirs_degrade_to_na(self):
        with tempfile.TemporaryDirectory() as prev, \
                tempfile.TemporaryDirectory() as cur:
            rc, out = run_delta(prev, cur)
        self.assertEqual(rc, 0)
        self.assertIn("no BENCH_solver.json rows", out)
        self.assertIn("no BENCH_portfolio.json", out)

    def test_previous_artifact_missing_rank_keys(self):
        # The old-vs-new diff the CI job actually performs right after
        # this PR lands: the previous run's BENCH_portfolio.json predates
        # the rank_* counters.  Every rank row must print with an "n/a"
        # previous cell instead of raising.
        old = {k: v for k, v in CURRENT_PORTFOLIO.items()
               if not k.startswith("total_rank")}
        with tempfile.TemporaryDirectory() as prev, \
                tempfile.TemporaryDirectory() as cur:
            write_json(prev, "BENCH_portfolio.json", old)
            write_json(cur, "BENCH_portfolio.json", CURRENT_PORTFOLIO)
            rc, out = run_delta(prev, cur)
        self.assertEqual(rc, 0)
        for label in ("rank-sharing race ratio vs lemma-only race",
                      "cores published (rank-sharing races)",
                      "rank refreshes (rank-sharing races)"):
            row = [l for l in out.splitlines() if label in l]
            self.assertEqual(len(row), 1, label)
            self.assertIn("n/a", row[0])

    def test_previous_artifact_missing_preprocess_keys(self):
        # Same diff one PR later: the previous run's artifact predates
        # the preprocess_* totals.  Those rows print "n/a" previous
        # cells instead of raising.
        old = {k: v for k, v in CURRENT_PORTFOLIO.items()
               if k not in ("total_vars_eliminated",
                            "total_clauses_subsumed",
                            "total_preprocess_us")}
        with tempfile.TemporaryDirectory() as prev, \
                tempfile.TemporaryDirectory() as cur:
            write_json(prev, "BENCH_portfolio.json", old)
            write_json(cur, "BENCH_portfolio.json", CURRENT_PORTFOLIO)
            rc, out = run_delta(prev, cur)
        self.assertEqual(rc, 0)
        for label in ("vars eliminated (preprocess)",
                      "clauses subsumed (preprocess)",
                      "preprocess time, us (suite)"):
            row = [l for l in out.splitlines() if label in l]
            self.assertEqual(len(row), 1, label)
            self.assertIn("n/a", row[0])

    def test_rank_metrics_diff_when_both_present(self):
        prev_doc = dict(CURRENT_PORTFOLIO,
                        total_ranks_published=100,
                        total_rank_refreshes=7)
        with tempfile.TemporaryDirectory() as prev, \
                tempfile.TemporaryDirectory() as cur:
            write_json(prev, "BENCH_portfolio.json", prev_doc)
            write_json(cur, "BENCH_portfolio.json", CURRENT_PORTFOLIO)
            rc, out = run_delta(prev, cur)
        self.assertEqual(rc, 0)
        row = [l for l in out.splitlines()
               if "cores published (rank-sharing races)" in l][0]
        self.assertIn("100", row)
        self.assertIn("120", row)
        self.assertIn("+20.0%", row)

    def test_observability_keys_degrade_and_diff(self):
        # Previous run predates the tracing layer: no cancel latency, no
        # trace section.  Rows print with n/a previous cells; when both
        # runs have the keys, the informational rows diff like any other.
        old = {k: v for k, v in CURRENT_PORTFOLIO.items()
               if k not in ("max_cancel_latency_us", "trace")}
        with tempfile.TemporaryDirectory() as prev, \
                tempfile.TemporaryDirectory() as cur:
            write_json(prev, "BENCH_portfolio.json", old)
            write_json(cur, "BENCH_portfolio.json", CURRENT_PORTFOLIO)
            rc, out = run_delta(prev, cur)
        self.assertEqual(rc, 0)
        for label in ("max cancel latency, us (all races)",
                      "traced-race retained events"):
            row = [l for l in out.splitlines() if label in l]
            self.assertEqual(len(row), 1, label)
            self.assertIn("n/a", row[0])
        with tempfile.TemporaryDirectory() as prev, \
                tempfile.TemporaryDirectory() as cur:
            write_json(prev, "BENCH_portfolio.json",
                       dict(CURRENT_PORTFOLIO, max_cancel_latency_us=1000))
            write_json(cur, "BENCH_portfolio.json", CURRENT_PORTFOLIO)
            rc, out = run_delta(prev, cur)
        self.assertEqual(rc, 0)
        row = [l for l in out.splitlines()
               if "max cancel latency" in l][0]
        self.assertIn("1,000", row)
        self.assertIn("850", row)

    def test_corrupt_json_degrades_to_na(self):
        with tempfile.TemporaryDirectory() as prev, \
                tempfile.TemporaryDirectory() as cur:
            with open(os.path.join(cur, "BENCH_portfolio.json"), "w") as f:
                f.write("{not json")
            write_json(prev, "BENCH_portfolio.json", CURRENT_PORTFOLIO)
            rc, out = run_delta(prev, cur)
        self.assertEqual(rc, 0)
        self.assertIn("no BENCH_portfolio.json", out)

    def test_memory_artifact_absent_degrades(self):
        # The previous run predates BENCH_memory.json entirely AND the
        # current run lacks it too (bench_memory leg skipped): the
        # Memory section must degrade to its absence note, exit 0.
        with tempfile.TemporaryDirectory() as prev, \
                tempfile.TemporaryDirectory() as cur:
            write_json(cur, "BENCH_portfolio.json", CURRENT_PORTFOLIO)
            rc, out = run_delta(prev, cur)
        self.assertEqual(rc, 0)
        self.assertIn("no BENCH_memory.json", out)

    def test_memory_metrics_diff_and_degrade(self):
        # Current run has the full memory artifact, previous has none:
        # every cell on the previous side is "n/a"; with both present
        # the compression ratio diffs numerically.
        cur_memory = {
            "codec_totals": {"clauses": 12000, "raw_bytes": 180000,
                             "encoded_bytes": 54000, "compression": 3.33},
            "pauses": {
                "arena.chunk_alloc_us": {"count": 40, "p99_us": 63},
                "arena.gc_pause_us": {"count": 2, "p99_us": 1023},
            },
            "rank_row": {
                "demoted": {"wall_sec": 0.08, "ranks_published": 0},
                "forced": {"wall_sec": 0.09, "ranks_published": 40},
            },
            "process": {"vm_hwm_kb": 9600},
        }
        with tempfile.TemporaryDirectory() as prev, \
                tempfile.TemporaryDirectory() as cur:
            write_json(cur, "BENCH_memory.json", cur_memory)
            rc, out = run_delta(prev, cur)
        self.assertEqual(rc, 0)
        self.assertIn("### Memory", out)
        self.assertIn("| tape codec compression (raw / encoded) | n/a "
                      "| 3.330 | n/a |", out)

        prev_memory = dict(cur_memory)
        prev_memory["codec_totals"] = {"clauses": 12000,
                                       "raw_bytes": 180000,
                                       "encoded_bytes": 60000,
                                       "compression": 3.0}
        with tempfile.TemporaryDirectory() as prev, \
                tempfile.TemporaryDirectory() as cur:
            write_json(prev, "BENCH_memory.json", prev_memory)
            write_json(cur, "BENCH_memory.json", cur_memory)
            rc, out = run_delta(prev, cur)
        self.assertEqual(rc, 0)
        self.assertIn("| tape codec compression (raw / encoded) | 3.000 "
                      "| 3.330 | +11.0% |", out)


if __name__ == "__main__":
    unittest.main()
