// File-based BMC driver: check an invariant of an AIGER (.aag) model.
//
//   $ ./aiger_bmc <model.aag> [--bound N] [--policy baseline|static|dynamic|shtrichman]
//                 [--property I] [--any-frame] [--incremental]
//                 [--simplify 0|1] [--dump-trace]
//
// With no file argument the example writes a demo circuit to a temporary
// .aag first, then checks it — so it is runnable out of the box.
#include <cstdio>
#include <string>

#include "bmc/engine.hpp"
#include "model/aiger.hpp"
#include "model/benchgen.hpp"
#include "util/options.hpp"

namespace {

refbmc::bmc::OrderingPolicy parse_policy(const std::string& name) {
  // The canonical name set (baseline, static, dynamic, replace,
  // shtrichman, evsids) — one parser for every CLI.
  const auto p = refbmc::bmc::parse_policy(name);
  if (!p) throw std::invalid_argument("unknown --policy: " + name);
  return *p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace refbmc;

  const Options opts = Options::parse(argc, argv);
  std::string path;
  if (opts.positionals().empty()) {
    // No input: generate a demo model so the example runs standalone.
    path = "/tmp/refbmc_demo.aag";
    model::write_aiger_file(path, model::fifo_buggy(4).net);
    std::printf("no input file given — wrote demo model to %s\n",
                path.c_str());
  } else {
    path = opts.positionals()[0];
  }

  const model::Netlist net = model::read_aiger_file(path);
  std::printf("%s: %zu inputs, %zu latches, %zu ANDs, %zu properties\n",
              path.c_str(), net.num_inputs(), net.num_latches(),
              net.num_ands(), net.bad_properties().size());
  if (net.bad_properties().empty()) {
    std::printf("model has no bad-state property (B section); nothing to "
                "check\n");
    return 2;
  }

  bmc::EngineConfig cfg;
  cfg.policy = parse_policy(opts.get("policy", "dynamic"));
  cfg.max_depth = opts.get_int("bound", 30);
  cfg.bad_mode = opts.get_bool("any-frame", false) ? bmc::BadMode::Any
                                                   : bmc::BadMode::Last;
  cfg.incremental = opts.get_bool("incremental", false);
  cfg.simplify = opts.get_bool("simplify", true);
  const auto property = static_cast<std::size_t>(opts.get_int("property", 0));

  bmc::BmcEngine engine(net, cfg, property);
  const bmc::BmcResult r = engine.run();

  switch (r.status) {
    case bmc::BmcResult::Status::CounterexampleFound:
      std::printf("FAIL: counter-example of length %d (validated on the "
                  "simulator)\n",
                  r.counterexample_depth);
      if (opts.get_bool("dump-trace", false))
        std::printf("%s", r.counterexample->to_string(net).c_str());
      break;
    case bmc::BmcResult::Status::BoundReached:
      std::printf("PASS up to depth %d (%zu UNSAT instances, %llu total "
                  "decisions)\n",
                  cfg.max_depth, r.per_depth.size(),
                  static_cast<unsigned long long>(r.total_decisions()));
      break;
    case bmc::BmcResult::Status::ResourceLimit:
      std::printf("UNDECIDED: resource limit after depth %d\n",
                  r.last_completed_depth);
      break;
  }
  std::printf("time: %.3f s\n", r.total_time_sec);
  return r.status == bmc::BmcResult::Status::CounterexampleFound ? 1 : 0;
}
