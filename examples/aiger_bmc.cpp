// File-based BMC driver: check an invariant of an AIGER (.aag) model
// through the stable façade (api/refbmc.hpp).
//
//   $ ./aiger_bmc <model.aag> [--bound N] [--policy baseline|static|dynamic|
//                 shtrichman|evsids] [--policies a,b,c] [--property I]
//                 [--any-frame] [--incremental] [--simplify 0|1]
//                 [--dump-trace] [any other race option]
//
// The flag set is the one shared from_options path every example uses:
// --policy picks a single ordering (default dynamic, the paper's best);
// --policies races several and the first definitive verdict wins.  With
// no file argument the example writes a demo circuit to a temporary
// .aag first, then checks it — so it is runnable out of the box.
#include <cstdio>
#include <string>

#include "api/refbmc.hpp"
#include "model/aiger.hpp"
#include "model/benchgen.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;

  const Options opts = Options::parse(argc, argv);
  std::string path;
  if (opts.positionals().empty()) {
    // No input: generate a demo model so the example runs standalone.
    path = "/tmp/refbmc_demo.aag";
    model::write_aiger_file(path, model::fifo_buggy(4).net);
    std::printf("no input file given — wrote demo model to %s\n",
                path.c_str());
  } else {
    path = opts.positionals()[0];
  }

  api::CheckRequest request;
  request.net = model::read_aiger_file(path);
  request.name = path;
  std::printf("%s: %zu inputs, %zu latches, %zu ANDs, %zu properties\n",
              path.c_str(), request.net.num_inputs(),
              request.net.num_latches(), request.net.num_ands(),
              request.net.bad_properties().size());
  if (request.net.bad_properties().empty()) {
    std::printf("model has no bad-state property (B section); nothing to "
                "check\n");
    return 2;
  }

  request.options = api::RaceOptions::from_options(opts);
  // This example's historical default is a single dynamic-ordering
  // engine; an explicit --policy/--policies still selects the lineup.
  if (!opts.has("policy") && !opts.has("policies"))
    request.options.policy("dynamic");
  if (!opts.has("bound") && !opts.has("depth")) request.options.max_depth(30);
  request.bad_index = static_cast<std::size_t>(opts.get_int("property", 0));

  const api::CheckResult r = api::check(request);

  switch (r.status) {
    case api::CheckResult::Status::CounterexampleFound:
      std::printf("FAIL: counter-example of length %d (validated on the "
                  "simulator; %s won)\n",
                  r.counterexample_depth, r.winner_policy.c_str());
      if (opts.get_bool("dump-trace", false))
        std::printf("%s", r.counterexample->to_string(request.net).c_str());
      break;
    case api::CheckResult::Status::BoundReached:
      std::printf("PASS up to depth %d (%zu UNSAT instances, %llu total "
                  "decisions)\n",
                  request.options.max_depth(), r.per_depth.size(),
                  static_cast<unsigned long long>(r.total_decisions()));
      break;
    case api::CheckResult::Status::ResourceLimit:
      std::printf("UNDECIDED: resource limit after depth %d\n",
                  r.last_completed_depth);
      break;
  }
  std::printf("time: %.3f s\n", r.wall_time_sec);
  return r.found_counterexample() ? 1 : 0;
}
