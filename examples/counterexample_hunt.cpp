// Counter-example hunting across a family of protocol bugs.
//
//   $ ./counterexample_hunt [--bound N] [--policy P | --policies a,b,c]
//
// Runs refined-ordering BMC (through the api façade) on the buggy
// control-logic benchmarks (arbiter, FIFO, Peterson, traffic), prints
// each counter-example, and replays every trace on the cycle-accurate
// simulator as a cross-check — the workflow of a verification engineer
// triaging failures.
#include <cstdio>
#include <vector>

#include "api/refbmc.hpp"
#include "bmc/trace.hpp"
#include "model/benchgen.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;
  const Options opts = Options::parse(argc, argv);

  std::vector<model::Benchmark> targets;
  targets.push_back(model::arbiter_buggy(6));
  targets.push_back(model::fifo_buggy(4));
  targets.push_back(model::peterson_buggy());
  targets.push_back(model::traffic_buggy(4));
  targets.push_back(model::with_distractor(model::fifo_buggy(4), 24, 2024));

  api::RaceOptions options = api::RaceOptions::from_options(opts);
  if (!opts.has("policy") && !opts.has("policies"))
    options.policy("dynamic");
  if (!opts.has("bound") && !opts.has("depth")) options.max_depth(24);
  const int bound = options.max_depth();

  int failures_found = 0;
  for (const auto& bm : targets) {
    std::printf("=== %s ===\n", bm.name.c_str());
    api::CheckRequest request;
    request.net = bm.net;
    request.name = bm.name;
    request.options = options;
    const api::CheckResult r = api::check(request);

    if (!r.found_counterexample()) {
      std::printf("no counter-example up to depth %d (unexpected!)\n\n",
                  bound);
      continue;
    }
    ++failures_found;
    const bool replays = bmc::validate_trace(bm.net, *r.counterexample);
    std::printf("bug confirmed at depth %d (simulator replay: %s)\n",
                r.counterexample_depth, replays ? "ok" : "FAILED");
    std::printf("%s\n", r.counterexample->to_string(bm.net).c_str());
  }
  std::printf("found %d/%zu injected bugs\n", failures_found, targets.size());
  return failures_found == static_cast<int>(targets.size()) ? 0 : 1;
}
