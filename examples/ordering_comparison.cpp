// Side-by-side comparison of decision-ordering policies on one circuit —
// a miniature of the paper's experimental setup.
//
//   $ ./ordering_comparison [--model arb8|fifo|peterson|acc] [--bound N]
//                           [--distractors R]
//
// Prints per-depth decision counts for standard BMC (pure VSIDS), the
// static and dynamic refined orderings (§3.3), the Shtrichman time-axis
// ordering (related work), and the EVSIDS scorer (the portfolio's fifth
// entrant), plus totals and speedup ratios.  Each policy is one
// single-entrant api::check — the same façade path the portfolio race
// takes, minus the racing.
#include <cstdio>
#include <string>

#include "api/refbmc.hpp"
#include "model/benchgen.hpp"
#include "util/options.hpp"

namespace {

refbmc::model::Benchmark pick_model(const std::string& name) {
  using namespace refbmc::model;
  if (name == "arb8") return arbiter_safe(8);
  if (name == "fifo") return fifo_safe(4);
  if (name == "peterson") return peterson_safe();
  if (name == "acc") return accumulator_reach(12, 3, 70);
  throw std::invalid_argument("unknown --model (use arb8|fifo|peterson|acc)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace refbmc;

  const Options opts = Options::parse(argc, argv);
  model::Benchmark bm = pick_model(opts.get("model", "arb8"));
  const int distractors = opts.get_int("distractors", 24);
  if (distractors > 0)
    bm = model::with_distractor(std::move(bm), distractors, 7);
  int bound = opts.get_int("bound", 12);
  if (bm.expect_fail && bm.expect_depth <= bound)
    bound = bm.expect_depth - 1;  // stay in the UNSAT region for fairness

  std::printf("model %s, depths 0..%d\n\n", bm.name.c_str(), bound);

  const char* policies[] = {"baseline", "static", "dynamic", "shtrichman",
                            "evsids"};
  constexpr int kNumPolicies = 5;

  const double budget = opts.get_double("budget", 5.0);
  api::CheckResult results[kNumPolicies];
  for (int p = 0; p < kNumPolicies; ++p) {
    api::CheckRequest request;
    request.net = bm.net;
    request.name = bm.name;
    request.options.policy(policies[p]).max_depth(bound).budget_sec(
        budget);  // some orderings lose badly here
    results[p] = api::check(request);
    if (results[p].status == api::CheckResult::Status::ResourceLimit)
      std::printf("note: %s hit the %.0fs budget at depth %d\n", policies[p],
                  budget, results[p].last_completed_depth);
  }

  std::printf("%5s %12s %12s %12s %12s %12s   (decisions)\n", "depth",
              "baseline", "static", "dynamic", "shtrichman", "evsids");
  for (int k = 0; k <= bound; ++k) {
    std::printf("%5d", k);
    for (int p = 0; p < kNumPolicies; ++p) {
      const auto& pd = results[p].per_depth;
      if (static_cast<std::size_t>(k) < pd.size())
        std::printf(" %12llu",
                    static_cast<unsigned long long>(
                        pd[static_cast<std::size_t>(k)].decisions));
      else
        std::printf(" %12s", "-");
    }
    std::printf("\n");
  }

  std::printf("\n%-12s %12s %14s %10s %8s\n", "policy", "decisions",
              "implications", "time(s)", "ratio");
  const double base_time = results[0].wall_time_sec;
  for (int p = 0; p < kNumPolicies; ++p) {
    std::printf("%-12s %12llu %14llu %10.3f %7.0f%%\n", policies[p],
                static_cast<unsigned long long>(results[p].total_decisions()),
                static_cast<unsigned long long>(
                    results[p].total_propagations()),
                results[p].wall_time_sec,
                100.0 * results[p].wall_time_sec / base_time);
  }
  return 0;
}
