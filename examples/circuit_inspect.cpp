// Circuit inspection: statistics, completeness thresholds, and Graphviz
// export for the benchmark models (or any AIGER file).
//
//   $ ./circuit_inspect                 # inspect the built-in suite
//   $ ./circuit_inspect model.aag       # inspect an AIGER model
//   $ ./circuit_inspect --dot model.aag # dump Graphviz to stdout
#include <cstdio>
#include <iostream>

#include "mc/reach.hpp"
#include "model/aiger.hpp"
#include "model/benchgen.hpp"
#include "model/stats.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;

  const Options opts = Options::parse(argc, argv);

  if (!opts.positionals().empty()) {
    const model::Netlist net =
        model::read_aiger_file(opts.positionals()[0]);
    if (opts.get_bool("dot", false)) {
      model::write_dot(std::cout, net);
      return 0;
    }
    std::printf("%s: %s\n", opts.positionals()[0].c_str(),
                model::analyze(net).to_string().c_str());
    return 0;
  }

  std::printf("%-26s %-60s %9s\n", "model", "statistics", "diameter");
  for (const auto& bm : model::quick_suite()) {
    const model::NetlistStats stats = model::analyze(bm.net);
    std::string diameter = "-";
    if (bm.net.num_latches() <= 20 && bm.net.num_inputs() <= 8)
      diameter = std::to_string(mc::compute_diameter(bm.net));
    std::printf("%-26s %-60s %9s\n", bm.name.c_str(),
                stats.to_string().c_str(), diameter.c_str());
  }
  std::printf("\n(--dot <file.aag> exports Graphviz; small models only)\n");
  return 0;
}
