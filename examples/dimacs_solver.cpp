// Standalone SAT solver front-end over the refbmc CDCL engine.
//
//   $ ./dimacs_solver <formula.cnf> [--core] [--verify-core] [--no-cdg]
//
// Prints SAT with a model, or UNSAT with (optionally) the unsatisfiable
// core extracted from the simplified conflict-dependency graph (§3.1).
// With no argument, solves a built-in pigeonhole formula as a demo.
#include <cstdio>
#include <sstream>

#include "sat/core_verify.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/options.hpp"

namespace {

refbmc::sat::Cnf demo_pigeonhole() {
  using namespace refbmc::sat;
  Cnf cnf;
  const int pigeons = 6, holes = 5;
  cnf.num_vars = pigeons * holes;
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h)
      clause.push_back(Lit::make(p * holes + h));
    cnf.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        cnf.add_clause({Lit::make(p1 * holes + h, true),
                        Lit::make(p2 * holes + h, true)});
  return cnf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace refbmc;
  using namespace refbmc::sat;

  const Options opts = Options::parse(argc, argv);
  Cnf cnf;
  if (opts.positionals().empty()) {
    std::printf("c no input file — solving demo pigeonhole PHP(6,5)\n");
    cnf = demo_pigeonhole();
  } else {
    cnf = parse_dimacs_file(opts.positionals()[0]);
  }
  std::printf("c %d variables, %zu clauses\n", cnf.num_vars,
              cnf.num_clauses());

  SolverConfig cfg;
  cfg.track_cdg = !opts.get_bool("no-cdg", false);
  Solver solver(cfg);
  for (int v = 0; v < cnf.num_vars; ++v) solver.new_var();
  for (const auto& clause : cnf.clauses) solver.add_clause(clause);

  const Result result = solver.solve();
  const auto& st = solver.stats();
  std::printf("c decisions=%llu propagations=%llu conflicts=%llu "
              "learned=%llu deleted=%llu time=%.3fs\n",
              static_cast<unsigned long long>(st.decisions),
              static_cast<unsigned long long>(st.propagations),
              static_cast<unsigned long long>(st.conflicts),
              static_cast<unsigned long long>(st.learned_clauses),
              static_cast<unsigned long long>(st.deleted_clauses),
              st.solve_time_sec);

  if (result == Result::Sat) {
    std::printf("s SATISFIABLE\nv ");
    for (int v = 0; v < cnf.num_vars; ++v)
      std::printf("%d ", solver.model_value(v) == l_True ? v + 1 : -(v + 1));
    std::printf("0\n");
    return 10;  // SAT-competition exit codes
  }
  if (result == Result::Unknown) {
    std::printf("s UNKNOWN\n");
    return 0;
  }

  std::printf("s UNSATISFIABLE\n");
  if (cfg.track_cdg && opts.get_bool("core", false)) {
    const auto core = solver.unsat_core();
    std::printf("c unsat core: %zu of %zu clauses (ids: ", core.size(),
                cnf.num_clauses());
    std::ostringstream ids;
    for (const ClauseId id : core) ids << id << ' ';
    std::printf("%s)\n", ids.str().c_str());
    if (opts.get_bool("verify-core", false)) {
      const CoreCheck check = verify_core(solver);
      std::printf("c core re-solve: %s\n",
                  check.core_unsat ? "UNSAT (certified)" : "SAT (BUG!)");
    }
  }
  return 20;
}
