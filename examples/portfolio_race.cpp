// Portfolio scheduler over the benchgen suite — the parallel front-end to
// everything the paper builds.
//
//   $ ./portfolio_race [--mode race|shard] [--threads N]
//                      [--policies baseline,static,dynamic,shtrichman,evsids]
//                      [--depth K] [--budget SECONDS] [--quick]
//                      [--incremental] [--simplify 0|1] [--seed S]
//                      [--share 0|1] [--share-lbd L] [--share-size S]
//                      [--share-cap N] [--share-rank 0|1]
//                      [--core-weighting linear|uniform|last-only|exp-decay]
//                      [--preprocess 0|1] [--bve-budget N]
//                      [--vivify-interval N]
//                      [--trace FILE] [--trace-buffer-kb KB] [--metrics FILE]
//
// --trace FILE records a race-wide event timeline and writes it as
// Chrome trace-event JSON — load it in https://ui.perfetto.dev or
// chrome://tracing; each racing solver (or shard worker) is its own
// track.  --metrics FILE writes the counter/histogram registry as flat
// JSON.  Both default to off (zero recording overhead).
//
// race:  every suite row is raced across the ordering policies — one
//        api::check per row, the same façade call the job server makes.
//        The first definitive verdict wins and cancels the losers.
//        Entrants exchange short/low-LBD learned clauses through a
//        SharedClausePool unless --share off, and pool their unsat cores
//        into one SharedRankSource — refining every rival's decision
//        ordering mid-solve — unless --share-rank off.  Prints the
//        winning policy and the exchange counters, and checks the
//        verdict against the suite's expectation — the portfolio must
//        never disagree with a single-policy run, sharing or not.
// shard: the suite is expanded into one job per (netlist, property) and
//        distributed over a work-stealing pool; prints the batch report
//        and the parallel speedup over the sequential-equivalent time.
//        (Batch sharding is a scheduler-level feature, below the façade.)
#include <cstdio>
#include <exception>
#include <string>

#include "api/refbmc.hpp"
#include "model/benchgen.hpp"
#include "portfolio/scheduler.hpp"
#include "util/options.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace refbmc;
  using namespace refbmc::portfolio;

  const Options opts = Options::parse(argc, argv);
  const api::RaceOptions options = api::RaceOptions::from_options(opts);
  const std::string mode = opts.get("mode", "race");
  const auto suite = opts.get_bool("quick", false) ? model::quick_suite()
                                                   : model::standard_suite();

  api::ObservabilityScope observability(options);

  if (mode == "race") {
    const ResolvedPortfolio cfg = options.resolve();
    std::printf(
        "racing %zu policies on %zu instances (%d threads/race, lemma "
        "sharing %s, rank sharing %s)\n\n",
        cfg.policies.size(), suite.size(),
        static_cast<int>(cfg.policies.size()),
        cfg.sharing.enabled ? "on" : "off",
        cfg.sharing.rank ? "on" : "off");
    std::printf("%-26s %-8s %-12s %10s %10s %9s %9s %6s %6s %8s\n", "model",
                "verdict", "winner", "race(s)", "expected", "exported",
                "imported", "publ", "refr", "cxl(us)");
    int mismatches = 0;
    for (const auto& bm : suite) {
      api::CheckRequest request;
      request.net = bm.net;
      request.name = bm.name;
      request.options = options;
      if (!opts.has("depth") && !opts.has("bound"))
        request.options.max_depth(bm.suggested_bound);
      const api::CheckResult r = api::check(request);

      const bool ok =
          !r.winner_policy.empty() && r.found_counterexample() == bm.expect_fail;
      if (!ok) ++mismatches;
      std::printf(
          "%-26s %-8s %-12s %10.3f %10s %9llu %9llu %6llu %6llu %8llu%s\n",
          bm.name.c_str(), to_string(r.status),
          r.winner_policy.empty() ? "-" : r.winner_policy.c_str(),
          r.wall_time_sec, bm.expect_fail ? "cex" : "bound",
          static_cast<unsigned long long>(r.clauses_exported),
          static_cast<unsigned long long>(r.clauses_imported),
          static_cast<unsigned long long>(r.ranks_published),
          static_cast<unsigned long long>(r.rank_refreshes),
          static_cast<unsigned long long>(r.cancel_latency_us),
          ok ? "" : "  <-- MISMATCH");
    }
    std::printf("\n%s\n", mismatches == 0
                              ? "all race verdicts match the expectations"
                              : "VERDICT MISMATCHES FOUND");
    return mismatches == 0 ? 0 : 1;
  }

  if (mode == "shard") {
    const ResolvedPortfolio cfg = options.resolve();
    std::vector<Job> jobs;
    for (const auto& bm : suite) {
      bmc::EngineConfig engine = cfg.engine;
      engine.policy = cfg.policies.front();
      if (!opts.has("depth")) engine.max_depth = bm.suggested_bound;
      for (Job& job : shard_properties(bm.net, engine, bm.name))
        jobs.push_back(std::move(job));
    }
    std::printf("sharding %zu jobs over %d workers\n\n", jobs.size(),
                cfg.num_threads);
    PortfolioScheduler scheduler(cfg.num_threads, cfg.seed, cfg.sharing);
    const BatchReport report =
        scheduler.run_batch(jobs, options.budget_sec());

    std::printf("%-30s %-8s %8s %8s  %s\n", "job", "verdict", "depth",
                "time(s)", "worker");
    for (const auto& r : report.results)
      std::printf("%-30s %-8s %8d %8.3f  #%d\n", r.name.c_str(),
                  to_string(r.result.status), r.result.last_completed_depth,
                  r.wall_time_sec, r.worker_id);
    std::printf(
        "\n%zu cex, %zu bound, %zu limit | wall %.3fs, sequential-equivalent "
        "%.3fs (%.2fx), %llu steals, %llu lemmas exported / %llu imported, "
        "%llu cores published / %llu rank refreshes\n",
        report.counterexamples(), report.bounds_reached(),
        report.resource_limits(), report.wall_time_sec,
        report.total_job_time_sec(),
        report.wall_time_sec > 0.0
            ? report.total_job_time_sec() / report.wall_time_sec
            : 0.0,
        static_cast<unsigned long long>(report.steals),
        static_cast<unsigned long long>(report.clauses_exported),
        static_cast<unsigned long long>(report.clauses_imported),
        static_cast<unsigned long long>(report.ranks_published),
        static_cast<unsigned long long>(report.rank_refreshes));
    return 0;
  }

  std::fprintf(stderr, "unknown --mode '%s' (use race|shard)\n", mode.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "portfolio_race: %s\n", e.what());
    return 2;
  }
}
