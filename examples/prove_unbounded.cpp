// Unbounded proofs with k-induction — BMC refutes, induction proves.
//
//   $ ./prove_unbounded [--max-k N] [--policy baseline|static|dynamic]
//
// Runs temporal induction on a set of passing and failing properties.
// For passing ones, the invariant is proven for ALL depths (not just up
// to a bound); for failing ones the base case yields the usual validated
// counter-example.  The refined decision ordering (§3.2–3.3) is applied
// to both instance sequences — base cases and inductive steps each form
// their own highly correlated UNSAT chain.
#include <cstdio>

#include "bmc/induction.hpp"
#include "model/benchgen.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;

  const Options opts = Options::parse(argc, argv);
  const int max_k = opts.get_int("max-k", 24);
  const auto policy = bmc::parse_policy(opts.get("policy", "dynamic"));
  if (!policy) {
    std::fprintf(stderr, "unknown --policy: %s\n",
                 opts.get("policy", "dynamic").c_str());
    return 2;
  }

  std::vector<model::Benchmark> targets;
  targets.push_back(model::peterson_safe());
  targets.push_back(model::gray_safe(6));
  targets.push_back(model::counter_safe(5, 12, 20));
  targets.push_back(model::arbiter_safe(6));
  targets.push_back(model::fifo_buggy(3));    // failing: base case fires
  targets.push_back(model::traffic_buggy(4)); // failing

  int proved = 0, refuted = 0;
  for (const auto& bm : targets) {
    bmc::InductionConfig cfg;
    cfg.policy = *policy;
    cfg.max_k = max_k;
    bmc::InductionProver prover(bm.net, cfg);
    const bmc::InductionResult r = prover.run();

    switch (r.status) {
      case bmc::InductionResult::Status::Proved:
        ++proved;
        std::printf("%-14s PROVED with k=%d   (base dec %llu, step dec "
                    "%llu, %.3fs)\n",
                    bm.name.c_str(), r.k,
                    static_cast<unsigned long long>(r.base_decisions),
                    static_cast<unsigned long long>(r.step_decisions),
                    r.total_time_sec);
        break;
      case bmc::InductionResult::Status::CounterexampleFound:
        ++refuted;
        std::printf("%-14s FAILS at depth %d (trace validated on the "
                    "simulator)\n",
                    bm.name.c_str(), r.k);
        break;
      case bmc::InductionResult::Status::BoundReached:
        std::printf("%-14s undecided up to k=%d\n", bm.name.c_str(), max_k);
        break;
      case bmc::InductionResult::Status::ResourceLimit:
        std::printf("%-14s resource limit\n", bm.name.c_str());
        break;
    }
  }
  std::printf("\n%d proved, %d refuted of %zu properties\n", proved, refuted,
              targets.size());
  return (proved + refuted == static_cast<int>(targets.size())) ? 0 : 1;
}
