// Quickstart: build a circuit, state an invariant, check it through the
// stable façade (api/refbmc.hpp), and inspect the result.
//
//   $ ./quickstart
//
// The model is a FIFO occupancy counter with an off-by-one bug in its
// full check; BMC finds the overflow and prints the validated input trace.
#include <cstdio>

#include "api/refbmc.hpp"
#include "model/benchgen.hpp"
#include "model/builder.hpp"

int main() {
  using namespace refbmc;

  // 1. Build a model: a 4-bit FIFO occupancy counter (capacity 14) whose
  //    "full" comparison is off by one, so it can overflow.
  //    (model::Builder offers word-level helpers for rolling your own.)
  model::Benchmark bm = model::fifo_buggy(4);
  std::printf("model: %s — %zu inputs, %zu latches, %zu AND gates\n",
              bm.name.c_str(), bm.net.num_inputs(), bm.net.num_latches(),
              bm.net.num_ands());
  std::printf("property: \"%s\" never holds\n\n",
              bm.net.bad_properties()[0].name.c_str());

  // 2. Build the request.  policy("dynamic") is the paper's best
  //    configuration: decision ordering driven by the unsat cores of
  //    previous depths, falling back to plain VSIDS on hard instances.
  //    (Drop the .policy call to race the whole policy lineup instead.)
  api::CheckRequest request;
  request.net = bm.net;
  request.name = bm.name;
  request.options.policy("dynamic").max_depth(24);

  const api::CheckResult result = api::check(request);

  // 3. Inspect the result.
  switch (result.status) {
    case api::CheckResult::Status::CounterexampleFound:
      std::printf("property FAILS at depth %d\n\n",
                  result.counterexample_depth);
      std::printf("%s\n", result.counterexample->to_string(bm.net).c_str());
      break;
    case api::CheckResult::Status::BoundReached:
      std::printf("no counter-example up to depth %d\n",
                  request.options.max_depth());
      break;
    case api::CheckResult::Status::ResourceLimit:
      std::printf("stopped by resource limit at depth %d\n",
                  result.last_completed_depth);
      break;
  }

  // 4. Per-depth statistics (decisions = SAT search tree size; the last
  //    two columns are what frame-wise simplification removed from the
  //    instance before the solver ever saw it).
  std::printf(
      "depth  result  decisions  implications  core-vars  vars-cut  "
      "clauses-cut\n");
  for (const auto& d : result.per_depth) {
    std::printf("%5d  %-6s  %9llu  %12llu  %9zu  %8llu  %11llu\n", d.depth,
                to_string(d.result),
                static_cast<unsigned long long>(d.decisions),
                static_cast<unsigned long long>(d.propagations), d.core_vars,
                static_cast<unsigned long long>(d.simplified_vars_removed),
                static_cast<unsigned long long>(d.simplified_clauses_removed));
  }
  std::printf("\ntotal time: %.3f s\n", result.wall_time_sec);
  return result.found_counterexample() ? 0 : 1;
}
